//! Structured errors for the ECL-CC execution pipeline.
//!
//! Hot paths used to panic on anything unexpected (oversized graphs,
//! simulator aborts, wrong labelings). Panics are fine for internal
//! invariant violations, but everything a *caller* can meaningfully react
//! to — by retrying, degrading to another backend, or reporting — is a
//! variant here.
//!
//! The taxonomy is deliberately *structured all the way down*: a watchdog
//! trip keeps its kernel name and cycle counts, a memory fault keeps its
//! faulting kernel, and [`EclError::Exhausted`] keeps the final
//! attempt's error as a boxed child instead of a flattened string, so a
//! batch engine (or a human reading a JSON report) can see exactly which
//! kernel misbehaved and by how much.

use ecl_gpu_sim::SimError;
use ecl_verify::VerifyError;
use std::fmt;

/// An execution-pipeline failure a caller can react to.
#[derive(Clone, Debug)]
pub enum EclError {
    /// The graph does not fit the simulator's 32-bit device indices.
    GraphTooLarge {
        /// Vertex count of the offending graph.
        vertices: usize,
        /// Directed edge count of the offending graph.
        directed_edges: usize,
    },
    /// The simulated GPU aborted the run (watchdog trip or memory fault).
    Sim(SimError),
    /// A backend produced a labeling that failed certification.
    Verification(VerifyError),
    /// A backend stage panicked; the panic was contained at the stage
    /// boundary.
    StagePanicked {
        /// Which stage panicked (e.g. `"gpu-sim"`).
        stage: String,
        /// The panic message, if it was a string.
        detail: String,
    },
    /// Every rung of the fallback ladder failed.
    Exhausted {
        /// Total attempts made across all stages.
        attempts: usize,
        /// The structured error of the last attempt, if any attempt was
        /// made (preserves kernel names and cycle counts instead of
        /// flattening them into a message).
        last: Option<Box<EclError>>,
    },
    /// A job exceeded its deadline before producing a certified answer.
    Timeout {
        /// Milliseconds elapsed when the deadline check fired.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// A backend's circuit breaker is open and no other backend is
    /// configured, so the work could not be attempted at all.
    CircuitOpen {
        /// Stable name of the gated backend (e.g. `"gpu-sim"`).
        backend: String,
    },
    /// The engine's bounded job queue rejected the submission
    /// (admission control under backpressure).
    QueueFull {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// A vertex ID from untrusted input is outside the structure's
    /// vertex range (`vertex >= len`). Surfaced by the fallible
    /// [`IncrementalCc`](crate::incremental::IncrementalCc) API so a
    /// network server can reject a bad request instead of panicking.
    InvalidVertex {
        /// The offending vertex ID.
        vertex: u32,
        /// The number of vertices the structure tracks.
        len: usize,
    },
}

impl EclError {
    /// The name of the kernel at the root of this error chain, when the
    /// failure originated inside a simulated kernel launch.
    pub fn kernel_name(&self) -> Option<&str> {
        match self {
            EclError::Sim(SimError::Watchdog { kernel, .. })
            | EclError::Sim(SimError::MemoryFault { kernel, .. }) => Some(kernel),
            EclError::Exhausted { last: Some(e), .. } => e.kernel_name(),
            _ => None,
        }
    }

    /// `(spent, budget)` cycle counts when the root cause is a watchdog
    /// trip, walking through [`EclError::Exhausted`] wrappers.
    pub fn watchdog_cycles(&self) -> Option<(u64, u64)> {
        match self {
            EclError::Sim(SimError::Watchdog { budget, spent, .. }) => Some((*spent, *budget)),
            EclError::Exhausted { last: Some(e), .. } => e.watchdog_cycles(),
            _ => None,
        }
    }

    /// Short stable kind tag for machine-readable reports.
    pub fn kind(&self) -> &'static str {
        match self {
            EclError::GraphTooLarge { .. } => "graph-too-large",
            EclError::Sim(SimError::Watchdog { .. }) => "sim-watchdog",
            EclError::Sim(SimError::MemoryFault { .. }) => "sim-memory-fault",
            EclError::Verification(_) => "verification",
            EclError::StagePanicked { .. } => "stage-panicked",
            EclError::Exhausted { .. } => "exhausted",
            EclError::Timeout { .. } => "timeout",
            EclError::CircuitOpen { .. } => "circuit-open",
            EclError::QueueFull { .. } => "queue-full",
            EclError::InvalidVertex { .. } => "invalid-vertex",
        }
    }
}

impl fmt::Display for EclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EclError::GraphTooLarge {
                vertices,
                directed_edges,
            } => write!(
                f,
                "graph too large for 32-bit device indices \
                 ({vertices} vertices, {directed_edges} directed edges)"
            ),
            EclError::Sim(e) => write!(f, "simulated GPU fault: {e}"),
            EclError::Verification(e) => write!(f, "result failed certification: {e}"),
            EclError::StagePanicked { stage, detail } => {
                write!(f, "stage `{stage}` panicked: {detail}")
            }
            EclError::Exhausted { attempts, last } => match last {
                Some(e) => write!(
                    f,
                    "all fallback stages failed after {attempts} attempts (last: {e})"
                ),
                None => write!(f, "no fallback stages were attempted"),
            },
            EclError::Timeout {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded ({elapsed_ms} ms elapsed > {deadline_ms} ms allowed)"
            ),
            EclError::CircuitOpen { backend } => write!(
                f,
                "circuit breaker for backend `{backend}` is open and no alternative is configured"
            ),
            EclError::QueueFull { capacity } => {
                write!(
                    f,
                    "job queue full (capacity {capacity}); submission rejected"
                )
            }
            EclError::InvalidVertex { vertex, len } => {
                write!(
                    f,
                    "vertex {vertex} out of range (structure tracks {len} vertices)"
                )
            }
        }
    }
}

impl std::error::Error for EclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EclError::Sim(e) => Some(e),
            EclError::Verification(e) => Some(e),
            EclError::Exhausted { last: Some(e), .. } => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<SimError> for EclError {
    fn from(e: SimError) -> Self {
        EclError::Sim(e)
    }
}

impl From<VerifyError> for EclError {
    fn from(e: VerifyError) -> Self {
        EclError::Verification(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = EclError::GraphTooLarge {
            vertices: 7,
            directed_edges: 9,
        };
        assert!(e.to_string().contains("7 vertices"));
        let e = EclError::from(SimError::Watchdog {
            kernel: "compute1".into(),
            budget: 10,
            spent: 11,
        });
        assert!(e.to_string().contains("compute1"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn exhausted_preserves_kernel_and_cycles() {
        let root = EclError::from(SimError::Watchdog {
            kernel: "compute2".into(),
            budget: 100,
            spent: 150,
        });
        let e = EclError::Exhausted {
            attempts: 6,
            last: Some(Box::new(root)),
        };
        assert_eq!(e.kernel_name(), Some("compute2"));
        assert_eq!(e.watchdog_cycles(), Some((150, 100)));
        assert!(e.to_string().contains("compute2"));
        assert!(e.to_string().contains("150"));
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e.kind(), "exhausted");
    }

    #[test]
    fn engine_variants_display() {
        let t = EclError::Timeout {
            elapsed_ms: 250,
            deadline_ms: 100,
        };
        assert!(t.to_string().contains("250"));
        assert_eq!(t.kind(), "timeout");
        let c = EclError::CircuitOpen {
            backend: "gpu-sim".into(),
        };
        assert!(c.to_string().contains("gpu-sim"));
        let q = EclError::QueueFull { capacity: 8 };
        assert!(q.to_string().contains("capacity 8"));
        let v = EclError::InvalidVertex { vertex: 9, len: 5 };
        assert_eq!(v.kind(), "invalid-vertex");
        assert!(v.to_string().contains("vertex 9"));
        assert!(v.to_string().contains("5 vertices"));
    }
}
