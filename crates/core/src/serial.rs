//! ECL-CC_SER — the paper's serial CPU implementation (§3, last
//! paragraph): same three phases and intermediate pointer jumping as the
//! GPU code, but no atomics and no do-while retry loop (a plain store
//! cannot fail), and no worklist.

use crate::config::{EclConfig, FiniKind, InitKind};
use crate::result::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use ecl_unionfind::concurrent::JumpKind;

/// Runs serial ECL-CC under `cfg` and returns the labeling.
pub fn run(g: &CsrGraph, cfg: &EclConfig) -> CcResult {
    let mut parent = init_phase(g, cfg.init);
    compute_phase(g, &mut parent, cfg.jump);
    finalize_phase(&mut parent, cfg.fini);
    CcResult::new(parent)
}

/// Runs serial ECL-CC directly over a Ligra+-style compressed graph,
/// decoding adjacency on the fly — ECL-CC's forward-only neighbor scans
/// are exactly the access pattern delta encoding supports, so the
/// algorithm needs no random adjacency access and no decompression
/// buffer. (Combines the paper's algorithm with Ligra+'s representation,
/// per §2's discussion of compressed graphs.)
pub fn run_compressed(g: &ecl_graph::CompressedGraph, cfg: &EclConfig) -> CcResult {
    let n = g.num_vertices();
    let mut parent = vec![0 as Vertex; n];
    // Initialization: the Init3 scan stops at the first smaller neighbor,
    // decoding only a prefix of each list.
    for v in 0..n as Vertex {
        parent[v as usize] = match cfg.init {
            InitKind::VertexId => v,
            InitKind::MinNeighbor => g.neighbors(v).min().map_or(v, |m| m.min(v)),
            InitKind::FirstSmaller => g.neighbors(v).find(|&u| u < v).unwrap_or(v),
        };
    }
    // Computation: identical hooking, neighbors decoded per edge.
    for v in 0..n as Vertex {
        let mut v_rep = find(&mut parent, v, cfg.jump);
        for u in g.neighbors(v) {
            if v > u {
                let u_rep = find(&mut parent, u, cfg.jump);
                if v_rep != u_rep {
                    if v_rep < u_rep {
                        parent[u_rep as usize] = v_rep;
                    } else {
                        parent[v_rep as usize] = u_rep;
                        v_rep = u_rep;
                    }
                }
            }
        }
    }
    finalize_phase(&mut parent, cfg.fini);
    CcResult::new(parent)
}

/// Initialization phase: produce the starting parent array.
pub(crate) fn init_phase(g: &CsrGraph, init: InitKind) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut parent = vec![0 as Vertex; n];
    for v in 0..n as Vertex {
        parent[v as usize] = init_label(g, v, init);
    }
    parent
}

/// The per-vertex initial label for each Init variant.
#[inline]
pub(crate) fn init_label(g: &CsrGraph, v: Vertex, init: InitKind) -> Vertex {
    match init {
        InitKind::VertexId => v,
        InitKind::MinNeighbor => g.neighbors(v).iter().copied().min().map_or(v, |m| m.min(v)),
        InitKind::FirstSmaller => g.neighbors(v).iter().copied().find(|&u| u < v).unwrap_or(v),
    }
}

fn compute_phase(g: &CsrGraph, parent: &mut [Vertex], jump: JumpKind) {
    for v in g.vertices() {
        let mut v_rep = find(parent, v, jump);
        for &u in g.neighbors(v) {
            // Process each undirected edge once, in one direction only.
            if v > u {
                let u_rep = find(parent, u, jump);
                if v_rep != u_rep {
                    // Hook: larger representative under the smaller. No CAS
                    // needed serially — the store cannot race.
                    if v_rep < u_rep {
                        parent[u_rep as usize] = v_rep;
                    } else {
                        parent[v_rep as usize] = u_rep;
                        v_rep = u_rep;
                    }
                }
            }
        }
    }
}

/// Serial find with the selected pointer-jumping flavour.
#[inline]
pub(crate) fn find(parent: &mut [Vertex], v: Vertex, jump: JumpKind) -> Vertex {
    match jump {
        JumpKind::Intermediate => {
            // Fig. 5, sequential: halve the path while walking it.
            let mut par = parent[v as usize];
            if par != v {
                let mut prev = v;
                loop {
                    let next = parent[par as usize];
                    if par <= next {
                        break;
                    }
                    parent[prev as usize] = next;
                    prev = par;
                    par = next;
                }
            }
            par
        }
        JumpKind::None => walk(parent, v),
        JumpKind::Single => {
            let root = walk(parent, v);
            parent[v as usize] = root;
            root
        }
        JumpKind::Multiple => {
            let root = walk(parent, v);
            let mut cur = v;
            while cur != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
    }
}

#[inline]
fn walk(parent: &[Vertex], v: Vertex) -> Vertex {
    let mut cur = v;
    loop {
        let p = parent[cur as usize];
        if p >= cur {
            return cur;
        }
        cur = p;
    }
}

fn finalize_phase(parent: &mut [Vertex], fini: FiniKind) {
    let n = parent.len();
    for v in 0..n as Vertex {
        match fini {
            FiniKind::Single => {
                let root = walk(parent, v);
                parent[v as usize] = root;
            }
            FiniKind::Intermediate => {
                let root = find(parent, v, JumpKind::Intermediate);
                parent[v as usize] = root;
            }
            FiniKind::Multiple => {
                let _ = find(parent, v, JumpKind::Multiple);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EclConfig;
    use ecl_graph::{generate, stats};
    use ecl_unionfind::concurrent::JumpKind;

    fn check(g: &CsrGraph, cfg: &EclConfig) {
        let r = run(g, cfg);
        r.verify(g).unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        // Labels must already be representatives: flat parent array.
        for (v, &l) in r.labels.iter().enumerate() {
            assert_eq!(r.labels[l as usize], l, "vertex {v} label not a root");
        }
    }

    #[test]
    fn default_on_varied_shapes() {
        let cfg = EclConfig::default();
        check(&generate::path(100), &cfg);
        check(&generate::cycle(100), &cfg);
        check(&generate::star(100), &cfg);
        check(&generate::disjoint_cliques(5, 10), &cfg);
        check(&generate::binary_tree(127), &cfg);
        check(&generate::grid2d(17, 23), &cfg);
        check(&generate::gnm_random(500, 700, 1), &cfg);
        check(
            &generate::rmat(10, 8, generate::RmatParams::GALOIS, 2),
            &cfg,
        );
    }

    #[test]
    fn empty_and_singleton() {
        let cfg = EclConfig::default();
        let r = run(&ecl_graph::GraphBuilder::new(0).build(), &cfg);
        assert_eq!(r.labels.len(), 0);
        let r = run(&ecl_graph::GraphBuilder::new(1).build(), &cfg);
        assert_eq!(r.labels, vec![0]);
    }

    #[test]
    fn all_init_variants_agree() {
        let g = generate::gnm_random(400, 900, 7);
        for init in [
            InitKind::VertexId,
            InitKind::MinNeighbor,
            InitKind::FirstSmaller,
        ] {
            check(&g, &EclConfig::with_init(init));
        }
    }

    #[test]
    fn all_jump_variants_agree() {
        let g = generate::rmat(9, 6, generate::RmatParams::GALOIS, 3);
        for jump in [
            JumpKind::Multiple,
            JumpKind::Single,
            JumpKind::None,
            JumpKind::Intermediate,
        ] {
            check(&g, &EclConfig::with_jump(jump));
        }
    }

    #[test]
    fn all_fini_variants_agree() {
        let g = generate::road_network(30, 30, 0.3, 1.0, 4);
        for fini in [FiniKind::Intermediate, FiniKind::Multiple, FiniKind::Single] {
            check(&g, &EclConfig::with_fini(fini));
        }
    }

    #[test]
    fn labels_are_component_minimums() {
        let g = generate::disjoint_cliques(4, 5);
        let r = run(&g, &EclConfig::default());
        assert_eq!(r.labels, stats::reference_labels(&g));
    }

    #[test]
    fn component_count_matches_reference() {
        let g = generate::kronecker(10, 8, 5);
        let r = run(&g, &EclConfig::default());
        assert_eq!(r.num_components(), stats::count_components(&g));
    }

    #[test]
    fn compressed_run_matches_csr_run() {
        for g in [
            generate::gnm_random(400, 1100, 17),
            generate::road_network(20, 20, 0.3, 1.0, 18),
            generate::kronecker(9, 6, 19),
            ecl_graph::GraphBuilder::new(12).build(),
        ] {
            let c = ecl_graph::CompressedGraph::from_csr(&g);
            let cfg = EclConfig::default();
            assert_eq!(run_compressed(&c, &cfg).labels, run(&g, &cfg).labels);
        }
    }

    #[test]
    fn compressed_run_all_variants_verify() {
        let g = generate::rmat(9, 6, generate::RmatParams::GALOIS, 21);
        let c = ecl_graph::CompressedGraph::from_csr(&g);
        for init in [
            InitKind::VertexId,
            InitKind::MinNeighbor,
            InitKind::FirstSmaller,
        ] {
            let r = run_compressed(&c, &EclConfig::with_init(init));
            r.verify(&g).unwrap();
        }
    }

    #[test]
    fn init3_picks_first_smaller_not_minimum() {
        // Vertex 3's adjacency is sorted: [1, 2]; first smaller is 1.
        let g = ecl_graph::builder::from_edges(4, &[(3, 2), (3, 1)]);
        assert_eq!(init_label(&g, 3, InitKind::FirstSmaller), 1);
        assert_eq!(init_label(&g, 3, InitKind::MinNeighbor), 1);
        assert_eq!(init_label(&g, 3, InitKind::VertexId), 3);
        assert_eq!(
            init_label(&g, 1, InitKind::FirstSmaller),
            1,
            "no smaller neighbor"
        );
    }
}
