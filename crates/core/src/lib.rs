//! ECL-CC: the paper's connected-components algorithm, in three
//! implementations sharing one algorithmic skeleton (§3):
//!
//! 1. **initialization** — each vertex's parent starts at the ID of the
//!    first neighbor in its adjacency list that is smaller than itself
//!    (falling back to its own ID),
//! 2. **computation** — every undirected edge is processed exactly once
//!    (only the `v > u` direction): both endpoints' representatives are
//!    found with *intermediate pointer jumping* (path halving) and the
//!    larger representative is hooked under the smaller,
//! 3. **finalization** — every parent pointer is short-circuited to the
//!    representative, which then serves as the component label.
//!
//! The three implementations:
//!
//! * [`serial`] — plain sequential code (the paper's ECL-CC_SER),
//! * [`parallel`] — the OpenMP-style port on the workspace thread pool
//!   with a lock-free atomic parent array (ECL-CC_OMP),
//! * [`gpu`] — the five-kernel CUDA structure on the SIMT simulator
//!   (init, three degree-bucketed compute kernels fed by a double-sided
//!   worklist, finalize) — the paper's headline implementation.
//!
//! Every phase is configurable via [`config::EclConfig`] to regenerate the
//! paper's §5.1 ablations (Init1/2/3 × Jump1/2/3/4 × Fini1/2/3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod gpu;
pub mod incremental;
pub mod ladder;
pub mod parallel;
pub mod result;
pub mod serial;

pub use config::{EclConfig, FiniKind, InitKind};
pub use ecl_unionfind::concurrent::JumpKind;
pub use error::EclError;
pub use ladder::{LadderConfig, LadderOutcome};
pub use result::CcResult;

use ecl_graph::CsrGraph;

/// Runs serial ECL-CC with the default configuration.
pub fn connected_components(g: &CsrGraph) -> CcResult {
    serial::run(g, &EclConfig::default())
}

/// Runs parallel (OpenMP-style) ECL-CC with the default configuration.
pub fn connected_components_par(g: &CsrGraph, threads: usize) -> CcResult {
    parallel::run(g, threads, &EclConfig::default())
}
