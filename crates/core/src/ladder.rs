//! Graceful-degradation fallback ladder.
//!
//! Production pipelines cannot afford a wrong answer, but they *can*
//! afford a slower one. The ladder runs ECL-CC on the fastest available
//! backend first and walks down on failure:
//!
//! ```text
//! simulated GPU  →  multicore CPU  →  serial
//! ```
//!
//! Every stage's output is certified by the independent checker in
//! [`ecl_verify`] *before* it is accepted — a backend that silently
//! produces a wrong labeling (not just one that crashes) is treated as
//! failed and the ladder degrades. Each stage is additionally isolated
//! with [`std::panic::catch_unwind`], so a panicking backend cannot take
//! the process down with it.
//!
//! A stage is retried once (configurable) before degrading; GPU retries
//! perturb the fault-plan seed so a transient injected fault does not
//! deterministically repeat, mirroring how real transient faults behave.

use crate::config::EclConfig;
use crate::error::EclError;
use crate::result::CcResult;
use crate::{gpu, parallel, serial};
use ecl_gpu_sim::{DeviceProfile, ExecMode, FaultPlan, Gpu};
use ecl_graph::CsrGraph;
use ecl_verify::Certificate;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One rung of the ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// ECL-CC's five kernels on the SIMT simulator.
    GpuSim,
    /// The OpenMP-style port on the workspace thread pool.
    ParallelCpu,
    /// Plain sequential ECL-CC — the rung of last resort.
    Serial,
}

impl Backend {
    /// Short stable name for logs and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::GpuSim => "gpu-sim",
            Backend::ParallelCpu => "parallel-cpu",
            Backend::Serial => "serial",
        }
    }
}

/// How the ladder should run.
#[derive(Clone, Debug)]
pub struct LadderConfig {
    /// Algorithm configuration shared by every backend.
    pub cc: EclConfig,
    /// Stages to try, in order. Defaults to GPU → parallel → serial.
    pub stages: Vec<Backend>,
    /// Attempts per stage before degrading (≥ 1). Defaults to 2:
    /// try, retry once, degrade.
    pub attempts_per_stage: usize,
    /// Threads for the parallel-CPU stage.
    pub threads: usize,
    /// Device profile for the GPU stage.
    pub profile: DeviceProfile,
    /// Fault plan installed on the simulated GPU (tests and demos inject
    /// faults here; production uses [`FaultPlan::none`]).
    pub fault: FaultPlan,
    /// Per-kernel cycle budget for the GPU watchdog, if any.
    pub watchdog: Option<u64>,
    /// Execution mode for the GPU-simulator stage. Serial (the default)
    /// gives reproducible cycles; [`ExecMode::HostParallel`] trades cycle
    /// determinism for wall-clock throughput — safe here because every
    /// ladder answer is certified before being accepted.
    pub exec: ExecMode,
    /// Observability recorder. When present and enabled, the ladder
    /// emits one wall-clock span per attempt (the attempt chain) and the
    /// GPU stage forwards the recorder to the simulated device for
    /// kernel spans. `None` (the default) records nothing.
    pub recorder: Option<ecl_obs::Recorder>,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            cc: EclConfig::default(),
            stages: vec![Backend::GpuSim, Backend::ParallelCpu, Backend::Serial],
            attempts_per_stage: 2,
            threads: 4,
            profile: DeviceProfile::test_tiny(),
            fault: FaultPlan::none(),
            watchdog: None,
            exec: ExecMode::Serial,
            recorder: None,
        }
    }
}

/// Record of one attempt, kept for every attempt the ladder made — the
/// audit trail of how the final answer was reached.
#[derive(Clone, Debug)]
pub struct StageAttempt {
    /// Which backend ran.
    pub backend: Backend,
    /// 1-based attempt number within that stage.
    pub attempt: usize,
    /// What happened.
    pub outcome: AttemptOutcome,
}

/// Outcome of a single attempt.
#[derive(Clone, Debug)]
pub enum AttemptOutcome {
    /// The backend's labeling passed certification.
    Certified {
        /// Component count established by the certificate.
        num_components: usize,
    },
    /// The backend failed: structured error, contained panic, or a
    /// labeling rejected by the checker. The full [`EclError`] is kept
    /// (not a flattened message) so the originating kernel name and
    /// cycle counts survive into reports.
    Failed {
        /// The structured failure.
        error: EclError,
    },
}

impl AttemptOutcome {
    /// Human-readable failure reason; `None` for certified outcomes.
    pub fn reason(&self) -> Option<String> {
        match self {
            AttemptOutcome::Certified { .. } => None,
            AttemptOutcome::Failed { error } => Some(error.to_string()),
        }
    }
}

/// A certified answer, plus the trail of attempts that produced it.
#[derive(Clone, Debug)]
pub struct LadderOutcome {
    /// The accepted (certified) labeling.
    pub result: CcResult,
    /// The certificate the checker issued for it.
    pub certificate: Certificate,
    /// The backend whose answer was accepted.
    pub backend: Backend,
    /// Every attempt made, in order, including failures.
    pub attempts: Vec<StageAttempt>,
}

/// Runs the fallback ladder: each stage in `cfg.stages` is attempted up
/// to `cfg.attempts_per_stage` times; the first labeling that passes
/// certification is returned. Only if *every* attempt of every stage
/// fails does this return [`EclError::Exhausted`].
pub fn run_with_fallback(g: &CsrGraph, cfg: &LadderConfig) -> Result<LadderOutcome, EclError> {
    let mut attempts: Vec<StageAttempt> = Vec::new();
    let mut last_error: Option<EclError> = None;

    for &backend in &cfg.stages {
        for attempt in 1..=cfg.attempts_per_stage.max(1) {
            let span_start = cfg
                .recorder
                .as_ref()
                .filter(|r| r.is_enabled())
                .map(|r| r.now_us());
            let produced = run_stage(g, cfg, backend, attempt);
            let error = match produced {
                Ok(result) => match ecl_verify::certify(g, &result.labels) {
                    Ok(certificate) => {
                        emit_attempt_span(
                            cfg,
                            backend,
                            attempt,
                            span_start,
                            Ok(certificate.num_components),
                        );
                        attempts.push(StageAttempt {
                            backend,
                            attempt,
                            outcome: AttemptOutcome::Certified {
                                num_components: certificate.num_components,
                            },
                        });
                        return Ok(LadderOutcome {
                            result,
                            certificate,
                            backend,
                            attempts,
                        });
                    }
                    Err(ve) => EclError::Verification(ve),
                },
                Err(e) => e,
            };
            emit_attempt_span(cfg, backend, attempt, span_start, Err(&error));
            attempts.push(StageAttempt {
                backend,
                attempt,
                outcome: AttemptOutcome::Failed {
                    error: error.clone(),
                },
            });
            last_error = Some(error);
        }
    }

    Err(EclError::Exhausted {
        attempts: attempts.len(),
        last: last_error.map(Box::new),
    })
}

/// Records one ladder attempt as a wall-clock span on the engine
/// timeline, with the outcome (certified component count or failure
/// reason) attached as span args. No-op when recording is off.
fn emit_attempt_span(
    cfg: &LadderConfig,
    backend: Backend,
    attempt: usize,
    span_start: Option<u64>,
    outcome: Result<usize, &EclError>,
) {
    let (Some(rec), Some(start)) = (cfg.recorder.as_ref(), span_start) else {
        return;
    };
    let dur = rec.now_us().saturating_sub(start);
    let mut ev = ecl_obs::TraceEvent::span(
        &format!("ladder:{}", backend.name()),
        "ladder",
        ecl_obs::PID_ENGINE,
        0,
        start,
        dur,
    )
    .arg_u64("attempt", attempt as u64);
    ev = match outcome {
        Ok(num_components) => ev
            .arg_str("outcome", "certified")
            .arg_u64("num_components", num_components as u64),
        Err(error) => ev
            .arg_str("outcome", "failed")
            .arg_str("error", &error.to_string()),
    };
    rec.record(ev);
    rec.add_metric("ladder.attempts", 1.0);
    match outcome {
        Ok(_) => rec.add_metric("ladder.certified", 1.0),
        Err(_) => rec.add_metric("ladder.failed", 1.0),
    }
}

/// Runs one backend attempt, containing panics at the stage boundary.
/// Returns the raw (uncertified) labeling or the structured failure —
/// watchdog trips and memory faults keep their kernel name and cycle
/// counts instead of being flattened into a message.
fn run_stage(
    g: &CsrGraph,
    cfg: &LadderConfig,
    backend: Backend,
    attempt: usize,
) -> Result<CcResult, EclError> {
    match backend {
        Backend::GpuSim => {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                // Fresh device per attempt: after a watchdog abort or
                // memory fault, device state is indeterminate by contract.
                let mut device = Gpu::new(cfg.profile.clone());
                let mut plan = cfg.fault;
                // Retries reseed the plan so a transient injected fault
                // does not repeat deterministically.
                plan.seed = plan.seed.wrapping_add(attempt as u64 - 1);
                device.set_fault_plan(plan);
                device.set_watchdog(cfg.watchdog);
                device.set_exec_mode(cfg.exec);
                device.set_recorder(cfg.recorder.clone());
                gpu::try_run(&mut device, g, &cfg.cc).map(|(r, _)| r)
            }));
            match caught {
                Ok(Ok(result)) => Ok(result),
                Ok(Err(e)) => Err(e),
                Err(payload) => Err(EclError::StagePanicked {
                    stage: backend.name().to_string(),
                    detail: panic_message(&payload),
                }),
            }
        }
        Backend::ParallelCpu => {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel::run(g, cfg.threads.max(1), &cfg.cc)
            }));
            caught.map_err(|p| EclError::StagePanicked {
                stage: backend.name().to_string(),
                detail: panic_message(&p),
            })
        }
        Backend::Serial => {
            let caught = catch_unwind(AssertUnwindSafe(|| serial::run(g, &cfg.cc)));
            caught.map_err(|p| EclError::StagePanicked {
                stage: backend.name().to_string(),
                detail: panic_message(&p),
            })
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generate;

    #[test]
    fn healthy_ladder_accepts_gpu_first_try() {
        let g = generate::gnm_random(200, 600, 5);
        let out = run_with_fallback(&g, &LadderConfig::default()).unwrap();
        assert_eq!(out.backend, Backend::GpuSim);
        assert_eq!(out.attempts.len(), 1);
        assert!(matches!(
            out.attempts[0].outcome,
            AttemptOutcome::Certified { .. }
        ));
        assert_eq!(out.certificate.num_components, out.result.num_components());
    }

    #[test]
    fn watchdog_starvation_degrades_to_cpu() {
        // A 1-cycle budget trips on the very first charge, every attempt:
        // the GPU stage can never succeed, so the ladder must degrade and
        // still return a certified answer.
        let g = generate::disjoint_cliques(3, 10);
        let cfg = LadderConfig {
            watchdog: Some(1),
            ..LadderConfig::default()
        };
        let out = run_with_fallback(&g, &cfg).unwrap();
        assert_eq!(out.backend, Backend::ParallelCpu);
        assert_eq!(out.certificate.num_components, 3);
        // Audit trail: two failed GPU attempts, then the accepted one.
        assert_eq!(out.attempts.len(), 3);
        for a in &out.attempts[..2] {
            assert_eq!(a.backend, Backend::GpuSim);
            match &a.outcome {
                AttemptOutcome::Failed { error } => {
                    assert!(error.to_string().contains("watchdog"), "error: {error}");
                    // The structured chain keeps the kernel that tripped
                    // and its cycle accounting.
                    assert!(error.kernel_name().is_some(), "kernel name lost: {error:?}");
                    let (spent, budget) = error.watchdog_cycles().unwrap();
                    assert_eq!(budget, 1);
                    assert!(spent > budget);
                }
                other => panic!("expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn serial_only_ladder_works() {
        let g = generate::cycle(40);
        let cfg = LadderConfig {
            stages: vec![Backend::Serial],
            ..LadderConfig::default()
        };
        let out = run_with_fallback(&g, &cfg).unwrap();
        assert_eq!(out.backend, Backend::Serial);
        assert_eq!(out.certificate.num_components, 1);
    }

    #[test]
    fn empty_stage_list_exhausts() {
        let g = generate::path(5);
        let cfg = LadderConfig {
            stages: vec![],
            ..LadderConfig::default()
        };
        assert!(matches!(
            run_with_fallback(&g, &cfg),
            Err(EclError::Exhausted { attempts: 0, .. })
        ));
    }

    #[test]
    fn faulty_gpu_still_yields_certified_answer() {
        // Heavy fault injection: whatever happens on the GPU rung, the
        // ladder's answer must be certified-correct.
        let g = generate::gnm_random(150, 400, 9);
        let cfg = LadderConfig {
            fault: FaultPlan::everything(0xfa11),
            watchdog: Some(2_000_000),
            ..LadderConfig::default()
        };
        let out = run_with_fallback(&g, &cfg).unwrap();
        assert_eq!(
            out.certificate.num_components,
            ecl_graph::stats::count_components(&g)
        );
    }
}
