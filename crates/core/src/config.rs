//! Configuration knobs for the three ECL-CC phases, matching the variants
//! ablated in the paper's §5.1.

use ecl_unionfind::concurrent::JumpKind;

/// Initialization variants (Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitKind {
    /// Init1: each vertex's own ID (what most prior codes do).
    VertexId,
    /// Init2: the smallest ID among all neighbors (and self).
    MinNeighbor,
    /// Init3: the ID of the *first* neighbor in the adjacency list smaller
    /// than the vertex, else the vertex's own ID — the ECL-CC default.
    FirstSmaller,
}

/// Finalization variants (Fig. 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FiniKind {
    /// Fini1: intermediate pointer jumping, then point at the root.
    Intermediate,
    /// Fini2: multiple pointer jumping (two traversals).
    Multiple,
    /// Fini3: single pointer jumping — the ECL-CC default ("a little
    /// faster and simpler to implement than Fini1").
    Single,
}

/// Full configuration of an ECL-CC run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EclConfig {
    /// Initialization variant (default Init3).
    pub init: InitKind,
    /// Pointer jumping used inside the computation-phase find
    /// (default Jump4, intermediate).
    pub jump: JumpKind,
    /// Finalization variant (default Fini3, single).
    pub fini: FiniKind,
    /// Degree above which a vertex leaves the thread-granularity kernel
    /// for the warp-granularity kernel (paper: 16).
    pub warp_threshold: usize,
    /// Degree above which a vertex leaves the warp-granularity kernel for
    /// the block-granularity kernel (paper: 352).
    pub block_threshold: usize,
    /// When true, the GPU run probes parent-path lengths before every
    /// find (untimed), producing the Table 4 statistics.
    pub record_path_lengths: bool,
}

impl Default for EclConfig {
    fn default() -> Self {
        EclConfig {
            init: InitKind::FirstSmaller,
            jump: JumpKind::Intermediate,
            fini: FiniKind::Single,
            warp_threshold: 16,
            block_threshold: 352,
            record_path_lengths: false,
        }
    }
}

impl EclConfig {
    /// Default configuration with a different init variant.
    pub fn with_init(init: InitKind) -> Self {
        EclConfig {
            init,
            ..Default::default()
        }
    }

    /// Default configuration with a different jump variant.
    pub fn with_jump(jump: JumpKind) -> Self {
        EclConfig {
            jump,
            ..Default::default()
        }
    }

    /// Default configuration with a different finalization variant.
    pub fn with_fini(fini: FiniKind) -> Self {
        EclConfig {
            fini,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EclConfig::default();
        assert_eq!(c.init, InitKind::FirstSmaller);
        assert_eq!(c.jump, JumpKind::Intermediate);
        assert_eq!(c.fini, FiniKind::Single);
        assert_eq!(c.warp_threshold, 16);
        assert_eq!(c.block_threshold, 352);
        assert!(!c.record_path_lengths);
    }

    #[test]
    fn with_variants() {
        assert_eq!(
            EclConfig::with_init(InitKind::VertexId).init,
            InitKind::VertexId
        );
        assert_eq!(
            EclConfig::with_jump(JumpKind::Single).jump,
            JumpKind::Single
        );
        assert_eq!(
            EclConfig::with_fini(FiniKind::Multiple).fini,
            FiniKind::Multiple
        );
    }
}
