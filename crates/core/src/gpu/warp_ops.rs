//! Warp-vector union-find primitives shared by the simulated-GPU CC
//! kernels (ECL-CC's and the baselines').
//!
//! These are the device-side counterparts of `ecl_unionfind::concurrent`:
//! the same Fig. 5 / Fig. 6 logic, expressed lane-wise under an active
//! mask so divergence and coalescing are simulated faithfully.

use ecl_gpu_sim::{DevicePtr, Lanes, Mask, WarpCtx};
use ecl_unionfind::concurrent::JumpKind;

/// Per-lane `find` over the device parent array with the selected
/// pointer-jumping flavour. Inactive lanes return 0.
pub fn warp_find(
    w: &mut WarpCtx,
    parent: DevicePtr,
    v: &Lanes,
    mask: Mask,
    jump: JumpKind,
) -> Lanes {
    match jump {
        JumpKind::Intermediate => warp_find_intermediate(w, parent, v, mask),
        JumpKind::None => warp_walk(w, parent, v, mask),
        JumpKind::Single => {
            let root = warp_walk(w, parent, v, mask);
            // One store per lane that actually moved.
            let moved = mask & root.ne_mask(v);
            w.store(parent, v, &root, moved);
            root
        }
        JumpKind::Multiple => {
            let root = warp_walk(w, parent, v, mask);
            // Second traversal: repoint every element at the root.
            let mut cur = *v;
            let mut active = mask & cur.ne_mask(&root);
            while active.any() {
                let next = w.load(parent, &cur, active);
                w.store(parent, &cur, &root, active);
                cur.assign_masked(&next, active);
                active &= cur.ne_mask(&root);
                w.alu(2);
            }
            root
        }
    }
}

/// The paper's Fig. 5 in warp-vector form: every active lane halves its
/// own path while walking it; the warp iterates until its slowest lane
/// reaches a representative (lockstep divergence cost).
pub fn warp_find_intermediate(w: &mut WarpCtx, parent: DevicePtr, v: &Lanes, mask: Mask) -> Lanes {
    let mut par = w.load(parent, v, mask);
    let mut prev = *v;
    // Lanes whose parent is themselves are already done.
    let mut running = mask & par.ne_mask(v);
    while running.any() {
        let next = w.load(parent, &par, running);
        // Continue only where par > next (still descending).
        let cont = running & par.gt(&next);
        if cont.none() {
            break;
        }
        // parent[prev] = next — the benign-race halving store.
        w.store(parent, &prev, &next, cont);
        prev.assign_masked(&par, cont);
        par.assign_masked(&next, cont);
        running = cont;
        w.alu(3);
    }
    par
}

/// Pure traversal (Jump3): walk to the representative without writing.
pub fn warp_walk(w: &mut WarpCtx, parent: DevicePtr, v: &Lanes, mask: Mask) -> Lanes {
    let mut cur = *v;
    let mut running = mask;
    while running.any() {
        let p = w.load(parent, &cur, running);
        // A representative satisfies parent(x) >= x (== in practice).
        let cont = running & p.lt(&cur);
        cur.assign_masked(&p, cont);
        running = cont;
        w.alu(2);
    }
    cur
}

/// The paper's Fig. 6 hooking in warp-vector form: each active lane links
/// the larger of its two representatives under the smaller with a CAS
/// retry loop. Returns the merged representative per lane.
pub fn warp_hook(
    w: &mut WarpCtx,
    parent: DevicePtr,
    u_rep_in: &Lanes,
    v_rep_in: &Lanes,
    mask: Mask,
) -> Lanes {
    let mut u_rep = *u_rep_in;
    let mut v_rep = *v_rep_in;
    let mut repeat = mask & u_rep.ne_mask(&v_rep);
    while repeat.any() {
        let v_less = repeat & v_rep.lt(&u_rep);
        let u_less = repeat & !v_less;
        // if (v_rep < u_rep) atomicCAS(&parent[u_rep], u_rep, v_rep)
        let ret1 = w.atomic_cas(parent, &u_rep, &u_rep, &v_rep, v_less);
        let fail1 = v_less & ret1.ne_mask(&u_rep);
        u_rep.assign_masked(&ret1, fail1);
        // else atomicCAS(&parent[v_rep], v_rep, u_rep)
        let ret2 = w.atomic_cas(parent, &v_rep, &v_rep, &u_rep, u_less);
        let fail2 = u_less & ret2.ne_mask(&v_rep);
        v_rep.assign_masked(&ret2, fail2);
        repeat = (fail1 | fail2) & u_rep.ne_mask(&v_rep);
        w.alu(4);
    }
    // Merged representative: the smaller of the two (equal where hooked).
    let merged = u_rep.zip(&v_rep, u32::min);
    merged.select(&Lanes::default(), mask)
}

/// Like [`warp_hook`], but also returns the mask of lanes whose own CAS
/// performed a link. Because parent links always point to strictly
/// smaller IDs, each successful CAS provably merges two distinct
/// components — spanning-forest kernels use the mask to claim edges
/// (exactly one claimant per merge, even under weight ties).
pub fn warp_hook_linked(
    w: &mut WarpCtx,
    parent: DevicePtr,
    u_rep_in: &Lanes,
    v_rep_in: &Lanes,
    mask: Mask,
) -> (Lanes, Mask) {
    let mut u_rep = *u_rep_in;
    let mut v_rep = *v_rep_in;
    let mut linked = Mask::NONE;
    let mut repeat = mask & u_rep.ne_mask(&v_rep);
    while repeat.any() {
        let v_less = repeat & v_rep.lt(&u_rep);
        let u_less = repeat & !v_less;
        let ret1 = w.atomic_cas(parent, &u_rep, &u_rep, &v_rep, v_less);
        let ok1 = v_less & ret1.eq_mask(&u_rep);
        linked |= ok1;
        let fail1 = v_less & !ok1;
        u_rep.assign_masked(&ret1, fail1);
        let ret2 = w.atomic_cas(parent, &v_rep, &v_rep, &u_rep, u_less);
        let ok2 = u_less & ret2.eq_mask(&v_rep);
        linked |= ok2;
        let fail2 = u_less & !ok2;
        v_rep.assign_masked(&ret2, fail2);
        repeat = (fail1 | fail2) & u_rep.ne_mask(&v_rep);
        w.alu(4);
    }
    let merged = u_rep.zip(&v_rep, u32::min);
    (merged.select(&Lanes::default(), mask), linked)
}

/// Untimed probe of the parent-path length of each active lane's vertex
/// (Table 4 instrumentation). Returns per-lane lengths.
pub fn probe_path_lengths(w: &WarpCtx, parent: DevicePtr, v: &Lanes, mask: Mask) -> Lanes {
    let mut out = Lanes::default();
    for lane in mask.iter() {
        let mut cur = v.get(lane);
        let mut len = 0u32;
        loop {
            let p = w.peek(parent, cur);
            if p >= cur {
                break;
            }
            len += 1;
            cur = p;
        }
        out.set(lane, len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_gpu_sim::{DeviceProfile, Gpu};

    fn chain_gpu(n: u32) -> (Gpu, DevicePtr) {
        // parent[i] = i - 1 (vertex 0 is the representative).
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let data: Vec<u32> = (0..n).map(|i| i.saturating_sub(1)).collect();
        let p = gpu.alloc_from(&data);
        (gpu, p)
    }

    #[test]
    fn walk_reaches_root() {
        let (mut gpu, p) = chain_gpu(64);
        gpu.launch_warps("t", 32, |w| {
            let v = w.thread_ids().add_scalar(32);
            let root = warp_walk(w, p, &v, Mask::ALL);
            assert_eq!(root, Lanes::splat(0));
        });
        // Jump3 writes nothing.
        let after = gpu.download(p);
        assert_eq!(after[63], 62);
    }

    #[test]
    fn intermediate_halves_and_finds() {
        let (mut gpu, p) = chain_gpu(64);
        gpu.launch_warps("t", 32, |w| {
            let v = Lanes::splat(63);
            let root = warp_find_intermediate(w, p, &v, Mask(1));
            assert_eq!(root.get(0), 0);
        });
        let after = gpu.download(p);
        // Path from 63 should be roughly halved.
        let mut cur = 63u32;
        let mut len = 0;
        while after[cur as usize] < cur {
            cur = after[cur as usize];
            len += 1;
        }
        assert!(len <= 33, "path length {len} not halved");
    }

    #[test]
    fn multiple_flattens_path() {
        let (mut gpu, p) = chain_gpu(32);
        gpu.launch_warps("t", 32, |w| {
            let v = Lanes::splat(31);
            let root = warp_find(w, p, &v, Mask(1), JumpKind::Multiple);
            assert_eq!(root.get(0), 0);
        });
        let after = gpu.download(p);
        for (i, &a) in after.iter().enumerate().skip(1) {
            assert_eq!(a, 0, "element {i} must point at root");
        }
    }

    #[test]
    fn single_moves_only_start() {
        let (mut gpu, p) = chain_gpu(32);
        gpu.launch_warps("t", 32, |w| {
            let v = Lanes::splat(31);
            let _ = warp_find(w, p, &v, Mask(1), JumpKind::Single);
        });
        let after = gpu.download(p);
        assert_eq!(after[31], 0);
        assert_eq!(after[30], 29, "middle untouched");
    }

    #[test]
    fn hook_links_larger_under_smaller() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let p = gpu.alloc_from(&(0..8u32).collect::<Vec<_>>());
        gpu.launch_warps("t", 32, |w| {
            let merged = warp_hook(w, p, &Lanes::splat(6), &Lanes::splat(2), Mask(1));
            assert_eq!(merged.get(0), 2);
        });
        assert_eq!(gpu.download(p)[6], 2);
    }

    #[test]
    fn hook_many_lanes_converges() {
        // All 32 lanes hook rep (lane+1) under rep 0 concurrently — CAS
        // retries must resolve them all into one set.
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let p = gpu.alloc_from(&(0..64u32).collect::<Vec<_>>());
        gpu.launch_warps("t", 32, |w| {
            let u = w.thread_ids().add_scalar(1);
            let v = Lanes::splat(0);
            let _ = warp_hook(w, p, &u, &v, Mask::ALL);
        });
        let after = gpu.download(p);
        for (v, &a) in after.iter().enumerate().take(33).skip(1) {
            assert_eq!(a, 0, "vertex {v}");
        }
    }

    #[test]
    fn probe_lengths_untimed() {
        let (mut gpu, p) = chain_gpu(32);
        gpu.launch_warps("t", 32, |w| {
            let v = w.thread_ids();
            let lens = probe_path_lengths(w, p, &v, Mask::ALL);
            assert_eq!(lens.get(0), 0);
            assert_eq!(lens.get(31), 31);
        });
        // The probe must not generate traffic: only the (empty) kernel
        // overhead should appear.
        let k = &gpu.kernel_stats()[0];
        assert_eq!(k.l2_read_accesses, 0);
        assert_eq!(k.l2_write_accesses, 0);
    }
}
