//! ECL-CC on the simulated GPU — the paper's headline implementation.
//!
//! The five-kernel structure of §3:
//!
//! 1. `init` — thread granularity, grid-stride over vertices; writes each
//!    vertex's starting parent per the configured [`InitKind`].
//! 2. `compute1` — thread granularity; processes vertices of degree ≤ 16
//!    immediately and routes larger ones into the **double-sided
//!    worklist**: medium-degree vertices (17–352) to the front, high-
//!    degree vertices (> 352) to the back, via `atomicAdd` cursors.
//! 3. `compute2` — warp granularity; each warp processes the edge list of
//!    one medium-degree vertex, 32 edges at a time.
//! 4. `compute3` — block granularity; each thread block processes one
//!    high-degree vertex, 256 edges at a time.
//! 5. `finalize` — thread granularity; short-circuits every parent to the
//!    representative per the configured [`FiniKind`].
//!
//! All three compute kernels share the warp-vector `find`/`hook` from
//! [`warp_ops`] (the paper's Figs. 5 and 6).

pub mod warp_ops;

use crate::config::{EclConfig, FiniKind, InitKind};
use crate::error::EclError;
use crate::result::CcResult;
use ecl_gpu_sim::{Gpu, KernelStats, Lanes, Mask, LANES};
use ecl_unionfind::concurrent::JumpKind;
use warp_ops::{probe_path_lengths, warp_find, warp_find_intermediate, warp_hook, warp_walk};

/// Accumulated parent-path-length statistics (Table 4) gathered by the
/// untimed probe ahead of every computation-phase find.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathLengthStats {
    /// Sum of sampled path lengths.
    pub sum: u64,
    /// Number of samples (finds).
    pub samples: u64,
    /// Maximum observed path length.
    pub max: u32,
}

impl PathLengthStats {
    /// Average path length over all finds.
    pub fn average(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Serializes the stats as a JSON object (samples, avg, max).
    pub fn to_json(&self) -> String {
        ecl_obs::json::Obj::new()
            .u64("samples", self.samples)
            .f64("avg", self.average())
            .u64("max", self.max as u64)
            .build()
    }

    fn absorb(&mut self, lens: &Lanes, mask: Mask) {
        for lane in mask.iter() {
            let l = lens.get(lane);
            self.sum += l as u64;
            self.samples += 1;
            self.max = self.max.max(l);
        }
    }
}

/// Everything measured during one GPU ECL-CC run.
#[derive(Clone, Debug)]
pub struct GpuRunStats {
    /// Per-kernel stats in launch order: init, compute1, compute2,
    /// compute3, finalize.
    pub kernels: Vec<KernelStats>,
    /// Vertices routed to the warp-granularity kernel.
    pub worklist_mid: usize,
    /// Vertices routed to the block-granularity kernel.
    pub worklist_big: usize,
    /// Path-length statistics, present when
    /// [`EclConfig::record_path_lengths`] was set.
    pub path_lengths: Option<PathLengthStats>,
}

impl GpuRunStats {
    /// Total simulated cycles across the five kernels.
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.cycles).sum()
    }

    /// Sum of L2 read accesses over all kernels.
    pub fn l2_reads(&self) -> u64 {
        self.kernels.iter().map(|k| k.l2_read_accesses).sum()
    }

    /// Sum of L2 write accesses over all kernels.
    pub fn l2_writes(&self) -> u64 {
        self.kernels.iter().map(|k| k.l2_write_accesses).sum()
    }

    /// Stats of the kernel with the given name, if present.
    pub fn kernel(&self, name: &str) -> Option<&KernelStats> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Serializes the whole run — per-kernel stats (via
    /// [`KernelStats::to_json`]), worklist sizes, totals, and path-length
    /// stats when recorded — as one JSON object. This is the single
    /// serialization path shared by `bench --json`, the engine reports,
    /// and the `profile` subcommand.
    pub fn to_json(&self) -> String {
        let kernels: Vec<String> = self.kernels.iter().map(|k| k.to_json()).collect();
        let mut o = ecl_obs::json::Obj::new()
            .arr("kernels", &kernels)
            .u64("worklist_mid", self.worklist_mid as u64)
            .u64("worklist_big", self.worklist_big as u64)
            .u64("total_cycles", self.total_cycles())
            .u64("l2_reads", self.l2_reads())
            .u64("l2_writes", self.l2_writes());
        if let Some(p) = &self.path_lengths {
            o = o.raw("path_lengths", &p.to_json());
        }
        o.build()
    }
}

/// Runs GPU ECL-CC for `g` on `gpu` under `cfg`; returns the labeling and
/// the run's statistics. The graph is uploaded (untimed) at the start and
/// the labels downloaded (untimed) at the end, matching the paper's
/// measurement protocol ("we assume the graph to already be on the GPU",
/// §4).
pub fn run(gpu: &mut Gpu, g: &ecl_graph::CsrGraph, cfg: &EclConfig) -> (CcResult, GpuRunStats) {
    try_run(gpu, g, cfg).unwrap_or_else(|e| panic!("GPU ECL-CC failed: {e}"))
}

/// Fallible form of [`run`]: oversized graphs, watchdog trips, and device
/// memory faults come back as [`EclError`] instead of panicking. On error
/// the device's memory and counters are in an unspecified state — discard
/// the `Gpu` (or treat it as scratch) and re-run on a fresh device.
pub fn try_run(
    gpu: &mut Gpu,
    g: &ecl_graph::CsrGraph,
    cfg: &EclConfig,
) -> Result<(CcResult, GpuRunStats), EclError> {
    let n = g.num_vertices();
    if g.num_directed_edges() >= u32::MAX as usize || n >= u32::MAX as usize {
        return Err(EclError::GraphTooLarge {
            vertices: n,
            directed_edges: g.num_directed_edges(),
        });
    }
    let kernels_before = gpu.kernel_stats().len();

    // ---- device buffers (uploads are untimed, like a prior memcpy) ----
    let nidx_host: Vec<u32> = g.offsets().iter().map(|&o| o as u32).collect();
    let nidx = gpu.alloc_from(&nidx_host);
    let nlist = gpu.alloc_from(g.adjacency());
    let parent = gpu.alloc(n.max(1));
    let wl = gpu.alloc(n.max(1));
    let wlctr = gpu.alloc(2);

    // Behind a mutex so the kernel closures are `Fn + Sync` for the
    // mode-aware `*_sync` launches; in serial mode the lock is always
    // uncontended and the probe stays untimed either way.
    let paths = cfg
        .record_path_lengths
        .then(|| std::sync::Mutex::new(PathLengthStats::default()));

    let nu = n as u32;
    let total = gpu.suggested_threads(n.max(1));
    let stride = total as u32;

    // ---------------- kernel 1: init ----------------------------------
    let init_kind = cfg.init;
    gpu.try_launch_warps_sync("init", total, |w| {
        let mut v = w.thread_ids();
        loop {
            let m = w.launch_mask() & v.lt_scalar(nu);
            if m.none() {
                return;
            }
            let label = match init_kind {
                InitKind::VertexId => v,
                InitKind::MinNeighbor | InitKind::FirstSmaller => {
                    let beg = w.load(nidx, &v, m);
                    let end = w.load(nidx, &v.add_scalar(1), m);
                    let mut label = v;
                    let mut i = beg;
                    let mut scan = m & i.lt(&end);
                    while scan.any() {
                        let nb = w.load(nlist, &i, scan);
                        match init_kind {
                            InitKind::MinNeighbor => {
                                let less = scan & nb.lt(&label);
                                label.assign_masked(&nb, less);
                            }
                            _ => {
                                // First neighbor smaller than v: record it
                                // and retire the lane.
                                let found = scan & nb.lt(&v);
                                label.assign_masked(&nb, found);
                                scan &= !found;
                            }
                        }
                        i = i.add_scalar(1);
                        scan &= i.lt(&end);
                        w.alu(2);
                    }
                    label
                }
            };
            w.store(parent, &v, &label, m);
            v = v.add_scalar(stride);
            w.alu(1);
        }
    })?;

    // ---------------- kernel 2: compute1 (thread granularity) ----------
    let jump = cfg.jump;
    let warp_thresh = cfg.warp_threshold as u32;
    let block_thresh = cfg.block_threshold as u32;
    gpu.try_launch_warps_sync("compute1", total, |w| {
        let mut v = w.thread_ids();
        loop {
            let m = w.launch_mask() & v.lt_scalar(nu);
            if m.none() {
                return;
            }
            let beg = w.load(nidx, &v, m);
            let end = w.load(nidx, &v.add_scalar(1), m);
            let deg = end.zip(&beg, u32::wrapping_sub);
            w.alu(2);

            // Route medium-degree vertices to the worklist front.
            let mid = m & deg.gt(&Lanes::splat(warp_thresh)) & deg.le(&Lanes::splat(block_thresh));
            if mid.any() {
                let slot = w.atomic_add(wlctr, &Lanes::splat(0), &Lanes::splat(1), mid);
                w.store(wl, &slot, &v, mid);
            }
            // Route high-degree vertices to the worklist back.
            let big = m & deg.gt(&Lanes::splat(block_thresh));
            if big.any() {
                let taken = w.atomic_add(wlctr, &Lanes::splat(1), &Lanes::splat(1), big);
                let slot = taken.map(|t| nu - 1 - t);
                w.store(wl, &slot, &v, big);
            }

            // Process low-degree vertices immediately.
            let small = m & deg.le(&Lanes::splat(warp_thresh));
            if small.any() {
                if let Some(acc) = &paths {
                    let lens = probe_path_lengths(w, parent, &v, small);
                    acc.lock().unwrap().absorb(&lens, small);
                }
                let mut v_rep = warp_find(w, parent, &v, small, jump);
                let mut i = beg;
                let mut e = small & i.lt(&end);
                while e.any() {
                    let u = w.load(nlist, &i, e);
                    // Only one direction of each undirected edge (v > u).
                    let proc = e & u.lt(&v);
                    if proc.any() {
                        if let Some(acc) = &paths {
                            let lens = probe_path_lengths(w, parent, &u, proc);
                            acc.lock().unwrap().absorb(&lens, proc);
                        }
                        let u_rep = warp_find(w, parent, &u, proc, jump);
                        let merged = warp_hook(w, parent, &u_rep, &v_rep, proc);
                        v_rep.assign_masked(&merged, proc);
                    }
                    i = i.add_scalar(1);
                    e &= i.lt(&end);
                    w.alu(2);
                }
            }
            v = v.add_scalar(stride);
            w.alu(1);
        }
    })?;

    // Worklist sizes become known to the host here (the CUDA code reads
    // them in-kernel; reading them between launches is untimed either way).
    let ctr = gpu.download(wlctr);
    let (mid_count, big_count) = (ctr[0], ctr[1]);

    // ---------------- kernel 3: compute2 (warp granularity) ------------
    gpu.try_launch_warps_sync("compute2", total, |w| {
        let num_warps = (w.total_threads() as usize / LANES) as u32;
        let mut wi = w.thread_ids().get(0) / LANES as u32;
        while wi < mid_count {
            let v = w.load_uniform(wl, wi);
            let beg = w.load_uniform(nidx, v);
            let end = w.load_uniform(nidx, v + 1);
            if let Some(acc) = &paths {
                let lens = probe_path_lengths(w, parent, &Lanes::splat(v), Mask(1));
                acc.lock().unwrap().absorb(&lens, Mask(1));
            }
            let v_rep0 = warp_find(w, parent, &Lanes::splat(v), Mask(1), jump).get(0);
            let mut v_rep = Lanes::splat(v_rep0);
            let vv = Lanes::splat(v);
            let mut base = beg;
            while base < end {
                let idx = Lanes::iota(base, 1);
                let m = idx.lt_scalar(end);
                let u = w.load(nlist, &idx, m);
                let proc = m & u.lt(&vv);
                if proc.any() {
                    if let Some(acc) = &paths {
                        let lens = probe_path_lengths(w, parent, &u, proc);
                        acc.lock().unwrap().absorb(&lens, proc);
                    }
                    let u_rep = warp_find(w, parent, &u, proc, jump);
                    let merged = warp_hook(w, parent, &u_rep, &v_rep, proc);
                    v_rep.assign_masked(&merged, proc);
                }
                base += LANES as u32;
                w.alu(2);
            }
            wi += num_warps;
            w.alu(1);
        }
    })?;

    // ---------------- kernel 4: compute3 (block granularity) -----------
    let nblocks = (gpu.profile().num_sms * 4).max(1);
    let tpb = gpu.profile().threads_per_block as u32;
    gpu.try_launch_blocks_sync("compute3", nblocks, |b| {
        let mut j = b.block_idx() as u32;
        let step = b.num_blocks() as u32;
        while j < big_count {
            let v = b.load_uniform(wl, nu - 1 - j);
            let beg = b.load_uniform(nidx, v);
            let end = b.load_uniform(nidx, v + 1);
            b.for_each_warp(|w| {
                let warp_in_block = (w.thread_ids().get(0) % tpb) / LANES as u32;
                if let Some(acc) = &paths {
                    if warp_in_block == 0 {
                        let lens = probe_path_lengths(w, parent, &Lanes::splat(v), Mask(1));
                        acc.lock().unwrap().absorb(&lens, Mask(1));
                    }
                }
                let v_rep0 = warp_find(w, parent, &Lanes::splat(v), Mask(1), jump).get(0);
                let mut v_rep = Lanes::splat(v_rep0);
                let vv = Lanes::splat(v);
                let mut base = beg + warp_in_block * LANES as u32;
                while base < end {
                    let idx = Lanes::iota(base, 1);
                    let m = idx.lt_scalar(end);
                    let u = w.load(nlist, &idx, m);
                    let proc = m & u.lt(&vv);
                    if proc.any() {
                        if let Some(acc) = &paths {
                            let lens = probe_path_lengths(w, parent, &u, proc);
                            acc.lock().unwrap().absorb(&lens, proc);
                        }
                        let u_rep = warp_find(w, parent, &u, proc, jump);
                        let merged = warp_hook(w, parent, &u_rep, &v_rep, proc);
                        v_rep.assign_masked(&merged, proc);
                    }
                    base += tpb;
                    w.alu(2);
                }
            });
            j += step;
        }
    })?;

    // ---------------- kernel 5: finalize -------------------------------
    let fini = cfg.fini;
    gpu.try_launch_warps_sync("finalize", total, |w| {
        let mut v = w.thread_ids();
        loop {
            let m = w.launch_mask() & v.lt_scalar(nu);
            if m.none() {
                return;
            }
            match fini {
                FiniKind::Single => {
                    let root = warp_walk(w, parent, &v, m);
                    let moved = m & root.ne_mask(&v);
                    w.store(parent, &v, &root, moved);
                }
                FiniKind::Intermediate => {
                    let root = warp_find_intermediate(w, parent, &v, m);
                    let moved = m & root.ne_mask(&v);
                    w.store(parent, &v, &root, moved);
                }
                FiniKind::Multiple => {
                    let _ = warp_find(w, parent, &v, m, JumpKind::Multiple);
                }
            }
            v = v.add_scalar(stride);
            w.alu(1);
        }
    })?;

    let labels = if n == 0 {
        Vec::new()
    } else {
        gpu.download(parent)[..n].to_vec()
    };
    let stats = GpuRunStats {
        kernels: gpu.kernel_stats()[kernels_before..].to_vec(),
        worklist_mid: mid_count as usize,
        worklist_big: big_count as usize,
        path_lengths: paths.map(|m| m.into_inner().unwrap()),
    };
    Ok((CcResult::new(labels), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_gpu_sim::DeviceProfile;
    use ecl_graph::generate;

    fn run_on(g: &ecl_graph::CsrGraph, cfg: &EclConfig) -> (CcResult, GpuRunStats) {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        run(&mut gpu, g, cfg)
    }

    fn check(g: &ecl_graph::CsrGraph, cfg: &EclConfig) -> GpuRunStats {
        let (r, s) = run_on(g, cfg);
        r.verify(g).unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        for (v, &l) in r.labels.iter().enumerate() {
            assert_eq!(r.labels[l as usize], l, "vertex {v} label not a root");
        }
        s
    }

    #[test]
    fn basic_shapes_verify() {
        let cfg = EclConfig::default();
        check(&generate::path(200), &cfg);
        check(&generate::cycle(100), &cfg);
        check(&generate::disjoint_cliques(4, 8), &cfg);
        check(&generate::grid2d(12, 12), &cfg);
    }

    #[test]
    fn empty_and_singleton() {
        let cfg = EclConfig::default();
        let (r, _) = run_on(&ecl_graph::GraphBuilder::new(0).build(), &cfg);
        assert!(r.labels.is_empty());
        let (r, _) = run_on(&ecl_graph::GraphBuilder::new(3).build(), &cfg);
        assert_eq!(r.labels, vec![0, 1, 2]);
    }

    #[test]
    fn five_kernels_in_order() {
        let s = check(&generate::gnm_random(300, 900, 1), &EclConfig::default());
        let names: Vec<_> = s.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(
            names,
            ["init", "compute1", "compute2", "compute3", "finalize"]
        );
    }

    #[test]
    fn star_routes_to_block_kernel() {
        // Star center has degree 999 > 352 → worklist back; leaves are
        // degree 1 → handled by compute1.
        let s = check(&generate::star(1000), &EclConfig::default());
        assert_eq!(s.worklist_big, 1);
        assert_eq!(s.worklist_mid, 0);
        // compute3 must have done real work.
        assert!(s.kernel("compute3").unwrap().l2_read_accesses > 0);
    }

    #[test]
    fn medium_degrees_route_to_warp_kernel() {
        // Complete graph K64: every vertex degree 63 ∈ (16, 352].
        let s = check(&generate::complete(64), &EclConfig::default());
        assert_eq!(s.worklist_mid, 64);
        assert_eq!(s.worklist_big, 0);
    }

    #[test]
    fn all_variants_verify_on_random_graph() {
        let g = generate::rmat(9, 8, generate::RmatParams::GALOIS, 3);
        for init in [
            InitKind::VertexId,
            InitKind::MinNeighbor,
            InitKind::FirstSmaller,
        ] {
            check(&g, &EclConfig::with_init(init));
        }
        for jump in [
            JumpKind::Multiple,
            JumpKind::Single,
            JumpKind::None,
            JumpKind::Intermediate,
        ] {
            check(&g, &EclConfig::with_jump(jump));
        }
        for fini in [FiniKind::Intermediate, FiniKind::Multiple, FiniKind::Single] {
            check(&g, &EclConfig::with_fini(fini));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = generate::kronecker(9, 8, 4);
        let (r1, s1) = run_on(&g, &EclConfig::default());
        let (r2, s2) = run_on(&g, &EclConfig::default());
        assert_eq!(r1.labels, r2.labels);
        assert_eq!(s1.total_cycles(), s2.total_cycles());
    }

    #[test]
    fn path_probe_collects_samples() {
        let g = generate::gnm_random(400, 1200, 7);
        let cfg = EclConfig {
            record_path_lengths: true,
            ..EclConfig::default()
        };
        let s = check(&g, &cfg);
        let p = s.path_lengths.unwrap();
        assert!(p.samples > 0);
        assert!(p.average() >= 0.0);
        // Paths during computation are short thanks to halving.
        assert!(p.max < 64, "max path {}", p.max);
    }

    #[test]
    fn no_jump_does_more_l2_reads_than_intermediate() {
        // The core claim behind Fig. 8 / Table 3, in miniature.
        let g = generate::road_network(40, 40, 0.2, 1.0, 9);
        let s_none = check(&g, &EclConfig::with_jump(JumpKind::None));
        let s_int = check(&g, &EclConfig::with_jump(JumpKind::Intermediate));
        assert!(
            s_none.l2_reads() > s_int.l2_reads(),
            "none {} vs intermediate {}",
            s_none.l2_reads(),
            s_int.l2_reads()
        );
    }

    #[test]
    fn matches_serial_labels_exactly() {
        // Min-wins hooking makes labels (not just partitions) canonical.
        let g = generate::gnm_random(500, 1500, 11);
        let (r, _) = run_on(&g, &EclConfig::default());
        let serial = crate::serial::run(&g, &EclConfig::default());
        assert_eq!(r.labels, serial.labels);
    }

    #[test]
    fn custom_thresholds_respected() {
        let cfg = EclConfig {
            warp_threshold: 2,
            block_threshold: 5,
            ..EclConfig::default()
        };
        // Path graph: interior degree 2 ≤ 2 → all compute1.
        let s = check(&generate::path(100), &cfg);
        assert_eq!(s.worklist_mid + s.worklist_big, 0);
        // Star(8): center degree 7 > 5 → block kernel.
        let s = check(&generate::star(8), &cfg);
        assert_eq!(s.worklist_big, 1);
    }
}
