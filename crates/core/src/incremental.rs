//! Incremental (streaming) connected components.
//!
//! The paper's computation phase is completely asynchronous: each edge is
//! hooked exactly once, and queries tolerate concurrent hooking thanks to
//! the benign-race arguments of §3. That makes the same machinery a
//! natural **online** structure — edges can arrive one at a time, from
//! many threads, with connectivity queries interleaved — which none of
//! the batch codes the paper compares against support. This module
//! packages that capability.

use crate::error::EclError;
use crate::result::CcResult;
use ecl_graph::Vertex;
use ecl_unionfind::AtomicParents;
use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free streaming connected-components structure.
///
/// All operations are safe to call concurrently from any number of
/// threads: [`add_edge`](Self::add_edge) hooks through the paper's Fig. 6
/// CAS loop, and [`connected`](Self::connected)/[`component`](Self::component)
/// use the Fig. 5 find with intermediate pointer jumping, so queries keep
/// compressing paths even in read-heavy workloads.
///
/// ```
/// use ecl_cc::incremental::IncrementalCc;
/// let cc = IncrementalCc::new(5);
/// assert!(!cc.connected(0, 2));
/// cc.add_edge(0, 1);
/// cc.add_edge(1, 2);
/// assert!(cc.connected(0, 2));
/// assert_eq!(cc.num_components(), 3); // {0,1,2} {3} {4}
/// ```
#[derive(Debug)]
pub struct IncrementalCc {
    parents: AtomicParents,
    /// Number of successful links so far (components = n - links).
    links: AtomicU64,
}

impl IncrementalCc {
    /// `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        IncrementalCc {
            parents: AtomicParents::new(n),
            links: AtomicU64::new(0),
        }
    }

    /// Rebuilds a structure from a previously captured parent array (the
    /// crash-safe snapshot path). Every entry must satisfy
    /// `parents[v] <= v` — the strictly-decreasing-chain invariant the
    /// hooking discipline maintains, which every traversal relies on for
    /// termination. The link count is recomputed from the root count, so
    /// [`num_components`](Self::num_components) is immediately exact.
    pub fn from_parents(parents: Vec<Vertex>) -> Result<Self, EclError> {
        let n = parents.len();
        for (v, &p) in parents.iter().enumerate() {
            if p as usize > v {
                return Err(EclError::InvalidVertex { vertex: p, len: n });
            }
        }
        let roots = parents
            .iter()
            .enumerate()
            .filter(|&(v, &p)| p as usize == v)
            .count();
        Ok(IncrementalCc {
            parents: AtomicParents::from_vec(parents),
            links: AtomicU64::new((n - roots) as u64),
        })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if the structure tracks no vertices.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` if the edge
    /// joined two previously-disconnected components.
    ///
    /// Idempotent: re-inserting an edge (or any edge within one
    /// component) returns `false` and changes nothing.
    pub fn add_edge(&self, u: Vertex, v: Vertex) -> bool {
        let ru = self.parents.find_repres(u);
        let rv = self.parents.find_repres(v);
        let (_, linked) = self.parents.hook_linked(ru, rv);
        if linked {
            self.links.fetch_add(1, Ordering::Relaxed);
        }
        linked
    }

    /// True if `u` and `v` are currently in the same component.
    ///
    /// Under concurrent insertion the answer is linearizable with respect
    /// to completed `add_edge` calls: edges fully inserted before the
    /// query are always observed.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        // Standard concurrent-union-find query loop: if the two finds
        // disagree, re-check that u's representative is still a root; a
        // changed root means a concurrent union interleaved and the find
        // must be retried.
        loop {
            let ru = self.parents.find_repres(u);
            let rv = self.parents.find_repres(v);
            if ru == rv {
                return true;
            }
            if self.parents.parent(ru) == ru {
                return false;
            }
        }
    }

    /// Current component representative of `v` (the smallest vertex ID in
    /// its component once no insertions are in flight).
    pub fn component(&self, v: Vertex) -> Vertex {
        self.parents.find_repres(v)
    }

    /// Fallible [`add_edge`](Self::add_edge) for untrusted input: vertex
    /// IDs are validated against the structure's range before any index,
    /// so a bad request yields [`EclError::InvalidVertex`] instead of a
    /// panic. Internal callers with known-good IDs keep the infallible
    /// API.
    pub fn try_add_edge(&self, u: Vertex, v: Vertex) -> Result<bool, EclError> {
        self.check(u)?;
        self.check(v)?;
        Ok(self.add_edge(u, v))
    }

    /// Fallible [`connected`](Self::connected) for untrusted input.
    pub fn try_connected(&self, u: Vertex, v: Vertex) -> Result<bool, EclError> {
        self.check(u)?;
        self.check(v)?;
        Ok(self.connected(u, v))
    }

    /// Fallible [`component`](Self::component) for untrusted input.
    pub fn try_component(&self, v: Vertex) -> Result<Vertex, EclError> {
        self.check(v)?;
        Ok(self.component(v))
    }

    #[inline]
    fn check(&self, v: Vertex) -> Result<(), EclError> {
        if (v as usize) < self.len() {
            Ok(())
        } else {
            Err(EclError::InvalidVertex {
                vertex: v,
                len: self.len(),
            })
        }
    }

    /// Current number of components (`n - successful links`). Exact when
    /// no insertions are in flight; otherwise a linearizable snapshot.
    pub fn num_components(&self) -> usize {
        self.len() - self.links.load(Ordering::Relaxed) as usize
    }

    /// A racy copy of the current parent array. Each entry is a valid
    /// parent pointer (any value ever stored keeps its path to the
    /// representative), so the copy is always a well-formed forest even
    /// while insertions are in flight — the property the crash-safe
    /// snapshot path in `ecl-serve` relies on.
    pub fn parents_snapshot(&self) -> Vec<Vertex> {
        self.parents.snapshot()
    }

    /// Freezes the structure into a final labeling (flattens every path).
    pub fn finish(self) -> CcResult {
        for v in 0..self.parents.len() as Vertex {
            let root = self.parents.find_naive(v);
            self.parents.set_parent(v, root);
        }
        CcResult::new(self.parents.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generate;

    #[test]
    fn basic_connectivity() {
        let cc = IncrementalCc::new(6);
        assert_eq!(cc.num_components(), 6);
        assert!(cc.add_edge(0, 1));
        assert!(cc.add_edge(2, 3));
        assert!(!cc.connected(0, 2));
        assert!(cc.add_edge(1, 2));
        assert!(cc.connected(0, 3));
        assert_eq!(cc.num_components(), 3);
    }

    #[test]
    fn add_edge_idempotent() {
        let cc = IncrementalCc::new(4);
        assert!(cc.add_edge(0, 1));
        assert!(!cc.add_edge(0, 1));
        assert!(!cc.add_edge(1, 0));
        assert_eq!(cc.num_components(), 3);
    }

    #[test]
    fn self_edge_is_noop() {
        let cc = IncrementalCc::new(3);
        assert!(!cc.add_edge(1, 1));
        assert_eq!(cc.num_components(), 3);
    }

    #[test]
    fn finish_matches_batch_run() {
        let g = generate::gnm_random(500, 1200, 23);
        let cc = IncrementalCc::new(g.num_vertices());
        for (u, v) in g.edges() {
            cc.add_edge(u, v);
        }
        let streamed = cc.finish();
        let batch = crate::connected_components(&g);
        assert_eq!(streamed.labels, batch.labels);
    }

    #[test]
    fn concurrent_insertions_and_queries() {
        let g = generate::kronecker(10, 8, 31);
        let cc = IncrementalCc::new(g.num_vertices());
        let edges: Vec<_> = g.edges().collect();
        let cc_ref = &cc;
        let edges_ref = &edges;
        ecl_parallel::parallel_for(
            8,
            edges.len(),
            ecl_parallel::Schedule::Dynamic { chunk: 16 },
            move |i| {
                let (u, v) = edges_ref[i];
                cc_ref.add_edge(u, v);
                // Interleave queries with insertions: a just-inserted
                // edge's endpoints must be connected.
                assert!(cc_ref.connected(u, v));
            },
        );
        let result = cc.finish();
        result.verify(&g).unwrap();
    }

    #[test]
    fn link_count_equals_spanning_forest_size() {
        let g = generate::disjoint_cliques(7, 9);
        let cc = IncrementalCc::new(g.num_vertices());
        let links = g.edges().filter(|&(u, v)| cc.add_edge(u, v)).count();
        assert_eq!(links, g.num_vertices() - 7);
        assert_eq!(cc.num_components(), 7);
    }

    #[test]
    fn empty_structure() {
        let cc = IncrementalCc::new(0);
        assert!(cc.is_empty());
        assert_eq!(cc.num_components(), 0);
        assert!(cc.finish().labels.is_empty());
    }

    #[test]
    fn try_api_rejects_out_of_range_vertices() {
        let cc = IncrementalCc::new(4);
        for bad in [
            cc.try_add_edge(0, 4),
            cc.try_add_edge(4, 0),
            cc.try_connected(9, 1),
            cc.try_connected(1, 9),
            cc.try_component(4).map(|_| false),
        ] {
            match bad {
                Err(EclError::InvalidVertex { len: 4, .. }) => {}
                other => panic!("expected InvalidVertex, got {other:?}"),
            }
        }
        // Nothing was mutated by the rejected calls.
        assert_eq!(cc.num_components(), 4);
        // In-range requests behave exactly like the infallible API.
        assert!(cc.try_add_edge(0, 1).unwrap());
        assert!(!cc.try_add_edge(1, 0).unwrap());
        assert!(cc.try_connected(0, 1).unwrap());
        assert_eq!(cc.try_component(1).unwrap(), 0);
    }

    #[test]
    fn from_parents_roundtrips_and_validates() {
        let cc = IncrementalCc::new(6);
        cc.add_edge(0, 1);
        cc.add_edge(2, 3);
        cc.add_edge(1, 2);
        let snap = cc.parents_snapshot();
        let restored = IncrementalCc::from_parents(snap).unwrap();
        assert_eq!(restored.num_components(), cc.num_components());
        assert!(restored.connected(0, 3));
        assert!(!restored.connected(0, 4));
        // An upward-pointing parent breaks the decreasing-chain
        // invariant and must be refused.
        match IncrementalCc::from_parents(vec![0, 2, 2]) {
            Err(EclError::InvalidVertex { vertex: 2, len: 3 }) => {}
            other => panic!("expected InvalidVertex, got {other:?}"),
        }
    }
}
