//! Lock-free concurrent union-find: the data structure at the core of
//! ECL-CC (paper §3, Figs. 5 and 6).
//!
//! The parent array is a slice of `AtomicU32`. All plain loads and stores
//! use `Relaxed` ordering: every value ever stored in a parent cell is a
//! valid vertex ID whose path still leads to the representative, so the
//! algorithm tolerates arbitrarily stale values — the "benign data races"
//! the paper proves safe in §3. No thread ever publishes other memory
//! through a parent pointer, so no acquire/release pairing is needed for
//! correctness; the final synchronization point is the thread join at the
//! end of each parallel phase, which is sequentially consistent.

use std::sync::atomic::{AtomicU32, Ordering};

/// Pointer-jumping variants of the concurrent find (paper §5.1, Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JumpKind {
    /// Jump1: multiple pointer jumping — two traversals, every element on
    /// the path ends up pointing at the representative.
    Multiple,
    /// Jump2: single pointer jumping — only the starting vertex is
    /// re-pointed at the representative.
    Single,
    /// Jump3: no pointer jumping — pure traversal.
    None,
    /// Jump4: intermediate pointer jumping (path halving) — the ECL-CC
    /// default and the paper's Fig. 5.
    Intermediate,
}

/// A concurrent disjoint-set forest with lock-free find and hook.
#[derive(Debug)]
pub struct AtomicParents {
    parent: Box<[AtomicU32]>,
}

impl AtomicParents {
    /// `n` singleton sets (`parent[v] = v`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        AtomicParents {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    /// Builds from an explicit initial parent array (ECL-CC's enhanced
    /// initialization produces one). Every entry must be `< n`.
    pub fn from_vec(parent: Vec<u32>) -> Self {
        let n = parent.len() as u32;
        assert!(parent.iter().all(|&p| p < n), "parent out of range");
        AtomicParents {
            parent: parent.into_iter().map(AtomicU32::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current parent of `v` (racy snapshot).
    #[inline]
    pub fn parent(&self, v: u32) -> u32 {
        self.parent[v as usize].load(Ordering::Relaxed)
    }

    /// Directly overwrites `v`'s parent. Intended for finalization phases
    /// (after hooking has finished) where the caller has computed the
    /// final representative; during hooking use [`Self::hook`] instead.
    #[inline]
    pub fn set_parent(&self, v: u32, p: u32) {
        self.parent[v as usize].store(p, Ordering::Relaxed);
    }

    /// The paper's Fig. 5 `find_repres`: walks to the representative while
    /// halving the path (each visited element is made to skip its
    /// successor with a single racy-but-benign word store).
    #[inline]
    pub fn find_repres(&self, v: u32) -> u32 {
        let mut par = self.parent(v);
        if par != v {
            let mut prev = v;
            loop {
                let next = self.parent(par);
                if par <= next {
                    break;
                }
                // Benign race: overwrites one valid parent with another
                // valid (closer) one; a lost update only costs work.
                self.parent[prev as usize].store(next, Ordering::Relaxed);
                prev = par;
                par = next;
            }
        }
        par
    }

    /// Find with a selectable pointer-jumping variant (for the Fig. 8
    /// ablation).
    pub fn find_with(&self, v: u32, kind: JumpKind) -> u32 {
        match kind {
            JumpKind::Intermediate => self.find_repres(v),
            JumpKind::None => self.find_naive(v),
            JumpKind::Single => {
                let root = self.find_naive(v);
                if root != v {
                    self.parent[v as usize].store(root, Ordering::Relaxed);
                }
                root
            }
            JumpKind::Multiple => {
                let root = self.find_naive(v);
                // Second traversal: point every element at the root.
                let mut cur = v;
                while cur != root {
                    let next = self.parent(cur);
                    self.parent[cur as usize].store(root, Ordering::Relaxed);
                    if next == cur {
                        break;
                    }
                    cur = next;
                }
                root
            }
        }
    }

    /// Traversal without compression (Jump3). Because hooking always makes
    /// smaller IDs win, parent chains strictly decrease, so this
    /// terminates even under concurrent modification.
    #[inline]
    pub fn find_naive(&self, v: u32) -> u32 {
        let mut cur = v;
        loop {
            let p = self.parent(cur);
            if p >= cur {
                return cur;
            }
            cur = p;
        }
    }

    /// The paper's Fig. 6 hooking: given the two endpoints' current
    /// representatives, links the larger under the smaller with a CAS
    /// retry loop. Returns the representative that won.
    ///
    /// `u_rep`/`v_rep` may be stale; the loop refreshes them from the CAS
    /// failure value exactly as the CUDA code does.
    pub fn hook(&self, mut u_rep: u32, mut v_rep: u32) -> u32 {
        loop {
            if v_rep == u_rep {
                return u_rep;
            }
            if v_rep < u_rep {
                match self.parent[u_rep as usize].compare_exchange(
                    u_rep,
                    v_rep,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return v_rep,
                    Err(actual) => u_rep = actual,
                }
            } else {
                match self.parent[v_rep as usize].compare_exchange(
                    v_rep,
                    u_rep,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return u_rep,
                    Err(actual) => v_rep = actual,
                }
            }
        }
    }

    /// Like [`Self::hook`], but also reports whether **this call**
    /// performed the linking CAS. Because parent links always point to
    /// strictly smaller IDs, a successful CAS provably merges two
    /// previously-distinct components — callers building spanning forests
    /// use the flag to claim the edge (exactly one claimant per merge).
    pub fn hook_linked(&self, mut u_rep: u32, mut v_rep: u32) -> (u32, bool) {
        loop {
            if v_rep == u_rep {
                return (u_rep, false);
            }
            let (hi, lo) = if v_rep < u_rep {
                (u_rep, v_rep)
            } else {
                (v_rep, u_rep)
            };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return (lo, true),
                Err(actual) => {
                    if hi == u_rep {
                        u_rep = actual;
                    } else {
                        v_rep = actual;
                    }
                }
            }
        }
    }

    /// Convenience: find both endpoints' representatives and hook them
    /// (one full edge-processing step).
    pub fn unite(&self, u: u32, v: u32) {
        let ru = self.find_repres(u);
        let rv = self.find_repres(v);
        self.hook(ru, rv);
    }

    /// Snapshot of the parent array (call only between parallel phases).
    pub fn snapshot(&self) -> Vec<u32> {
        self.parent
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of representatives in the current state.
    pub fn count_sets(&self) -> usize {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(i, p)| p.load(Ordering::Relaxed) == i as u32)
            .count()
    }

    /// Path length from `v` to its representative in the current state.
    pub fn path_length(&self, v: u32) -> usize {
        let mut cur = v;
        let mut len = 0;
        loop {
            let p = self.parent(cur);
            if p >= cur {
                return len;
            }
            len += 1;
            cur = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_parallel::{parallel_for, parallel_for_teams, Schedule};

    #[test]
    fn sequential_semantics() {
        let p = AtomicParents::new(10);
        p.unite(3, 7);
        p.unite(7, 9);
        assert_eq!(p.find_repres(9), 3);
        assert_eq!(p.find_repres(7), 3);
        assert_eq!(p.find_repres(0), 0);
        assert_eq!(p.count_sets(), 8);
    }

    #[test]
    fn hook_smaller_wins() {
        let p = AtomicParents::new(10);
        assert_eq!(p.hook(8, 2), 2);
        assert_eq!(p.parent(8), 2);
        assert_eq!(p.hook(2, 8), 2, "same set now");
    }

    #[test]
    fn hook_retries_on_stale_rep() {
        let p = AtomicParents::new(10);
        p.hook(5, 1); // parent[5] = 1
                      // Caller holds the stale belief that 5 is still a representative.
        let winner = p.hook(5, 3);
        assert_eq!(winner, 1, "retry must chase 5 -> 1 and hook 3 under 1");
        assert_eq!(p.find_repres(3), 1);
    }

    #[test]
    fn all_jump_kinds_find_same_root() {
        for kind in [
            JumpKind::Multiple,
            JumpKind::Single,
            JumpKind::None,
            JumpKind::Intermediate,
        ] {
            let p = AtomicParents::from_vec(vec![0, 0, 1, 2, 3, 4, 5, 6]);
            assert_eq!(p.find_with(7, kind), 0, "{kind:?}");
        }
    }

    #[test]
    fn multiple_jump_flattens_whole_path() {
        let p = AtomicParents::from_vec(vec![0, 0, 1, 2, 3, 4, 5, 6]);
        p.find_with(7, JumpKind::Multiple);
        for v in 1..8 {
            assert_eq!(p.parent(v), 0);
        }
    }

    #[test]
    fn single_jump_only_moves_start() {
        let p = AtomicParents::from_vec(vec![0, 0, 1, 2, 3]);
        p.find_with(4, JumpKind::Single);
        assert_eq!(p.parent(4), 0);
        assert_eq!(p.parent(3), 2, "middle untouched");
    }

    #[test]
    fn none_jump_changes_nothing() {
        let before = vec![0, 0, 1, 2, 3];
        let p = AtomicParents::from_vec(before.clone());
        p.find_with(4, JumpKind::None);
        assert_eq!(p.snapshot(), before);
    }

    #[test]
    fn intermediate_halves() {
        let p = AtomicParents::from_vec(vec![0, 0, 1, 2, 3, 4, 5, 6]);
        p.find_repres(7);
        assert!(p.path_length(7) <= 4);
    }

    #[test]
    fn concurrent_unions_form_correct_partition() {
        // 4 chains of 1000 vertices united by many threads concurrently;
        // every thread processes an interleaved share of the edges.
        let n = 4000u32;
        let p = AtomicParents::new(n as usize);
        let edges: Vec<(u32, u32)> = (0..n - 4).map(|i| (i, i + 4)).collect();
        let edges_ref = &edges;
        let p_ref = &p;
        parallel_for(8, edges.len(), Schedule::Dynamic { chunk: 7 }, move |i| {
            let (a, b) = edges_ref[i];
            p_ref.unite(a, b);
        });
        for v in 0..n {
            assert_eq!(p.find_repres(v), v % 4, "vertex {v}");
        }
        assert_eq!(p.count_sets(), 4);
    }

    #[test]
    fn concurrent_stress_same_target() {
        // All threads hammer unions onto the same pair of sets.
        let p = AtomicParents::new(1000);
        let p_ref = &p;
        parallel_for_teams(8, move |tid| {
            for i in 0..999u32 {
                p_ref.unite(i, i + 1);
                let _ = p_ref.find_repres(999 - (i % 500) - tid as u32 % 3);
            }
        });
        assert_eq!(p.count_sets(), 1);
        for v in 0..1000 {
            assert_eq!(p.find_repres(v), 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_vec_validates() {
        AtomicParents::from_vec(vec![0, 100]);
    }
}
