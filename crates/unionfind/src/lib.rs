//! Disjoint-set (union-find) substrates.
//!
//! Two families:
//!
//! * [`seq::DisjointSets`] — sequential parent-array union-find with
//!   pluggable path compression ([`seq::Compression`]): none, full
//!   (two-pass), path halving (the paper's "intermediate pointer
//!   jumping"), and path splitting. Union follows the paper's convention:
//!   the representative with the **smaller vertex ID** wins, so hooking
//!   order never changes the final partition.
//! * [`concurrent::AtomicParents`] — the lock-free concurrent structure at
//!   the heart of ECL-CC: an `AtomicU32` parent per vertex, the paper's
//!   Fig. 5 `find_repres` (path halving with benign races) and Fig. 6
//!   CAS-retry hooking.
//!
//! Both store *parent pointers*; a vertex whose parent is itself is a
//! representative. A chain of parents is a "path"; compression shortens
//! paths without ever changing any vertex's representative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod seq;

pub use concurrent::AtomicParents;
pub use seq::{Compression, DisjointSets};
