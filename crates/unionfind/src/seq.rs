//! Sequential union-find with pluggable path compression.

/// Path-compression strategy used by [`DisjointSets::find`].
///
/// The four strategies mirror the paper's four pointer-jumping variants
/// (§5.1, Fig. 8), restated for a sequential setting:
///
/// * `None` — Jump3: walk to the representative, change nothing.
/// * `Full` — Jump1 ("multiple pointer jumping"): two passes, every
///   element on the path ends up pointing directly at the representative.
/// * `Halving` — Jump4 ("intermediate pointer jumping"): one pass, every
///   element skips over its successor, halving the path.
/// * `Splitting` — one pass, every element's parent becomes its
///   grandparent (each element advances by one, paths shrink a bit less
///   than halving per traversal but all elements improve).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Compression {
    /// No compression (Jump3).
    None,
    /// Two-pass full compression (Jump1).
    Full,
    /// Path halving — the paper's intermediate pointer jumping (Jump4).
    Halving,
    /// Path splitting.
    Splitting,
}

/// A sequential disjoint-set forest over `0..n`.
///
/// Representatives are chosen by **smaller ID wins** (the paper's hooking
/// rule), which makes the final parent of every vertex independent of
/// union order: the representative of a set is always its minimum element
/// once [`DisjointSets::flatten`] has run.
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    compression: Compression,
}

impl DisjointSets {
    /// `n` singleton sets with path halving (the ECL-CC default).
    pub fn new(n: usize) -> Self {
        Self::with_compression(n, Compression::Halving)
    }

    /// `n` singleton sets with the given compression strategy.
    pub fn with_compression(n: usize, compression: Compression) -> Self {
        assert!(n <= u32::MAX as usize);
        DisjointSets {
            parent: (0..n as u32).collect(),
            compression,
        }
    }

    /// Builds from an explicit parent array (used by the CC codes' custom
    /// initialization). Every entry must be `< n`.
    pub fn from_parents(parent: Vec<u32>, compression: Compression) -> Self {
        let n = parent.len() as u32;
        assert!(parent.iter().all(|&p| p < n), "parent out of range");
        DisjointSets {
            parent,
            compression,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `v`, applying the configured compression.
    #[inline]
    pub fn find(&mut self, v: u32) -> u32 {
        match self.compression {
            Compression::None => self.find_no_compress(v),
            Compression::Full => self.find_full(v),
            Compression::Halving => self.find_halving(v),
            Compression::Splitting => self.find_splitting(v),
        }
    }

    fn find_no_compress(&self, v: u32) -> u32 {
        let mut cur = v;
        loop {
            let p = self.parent[cur as usize];
            if p == cur {
                return cur;
            }
            cur = p;
        }
    }

    fn find_full(&mut self, v: u32) -> u32 {
        let root = self.find_no_compress(v);
        let mut cur = v;
        while cur != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// The paper's Fig. 5 loop, sequential form: every visited element is
    /// made to skip its successor; one traversal.
    fn find_halving(&mut self, v: u32) -> u32 {
        let mut par = self.parent[v as usize];
        if par != v {
            let mut prev = v;
            loop {
                let next = self.parent[par as usize];
                if par <= next {
                    // `par > next` orders the walk downhill toward smaller
                    // IDs; equality means we reached the representative.
                    break;
                }
                self.parent[prev as usize] = next;
                prev = par;
                par = next;
            }
        }
        par
    }

    fn find_splitting(&mut self, v: u32) -> u32 {
        let mut cur = v;
        loop {
            let p = self.parent[cur as usize];
            let gp = self.parent[p as usize];
            if p == gp {
                return p;
            }
            self.parent[cur as usize] = gp;
            cur = p;
        }
    }

    /// Unions the sets of `u` and `v`; the smaller representative becomes
    /// the parent of the larger. Returns `true` if the sets were distinct.
    pub fn union(&mut self, u: u32, v: u32) -> bool {
        let ru = self.find(u);
        let rv = self.find(v);
        if ru == rv {
            return false;
        }
        let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
        self.parent[hi as usize] = lo;
        true
    }

    /// True if `u` and `v` are in the same set.
    pub fn same_set(&mut self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Number of sets (elements that are their own parent).
    pub fn count_sets(&self) -> usize {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p == i as u32)
            .count()
    }

    /// Makes every element point directly at its representative (the CC
    /// codes' finalization phase) and returns the parent array.
    pub fn flatten(&mut self) -> &[u32] {
        for v in 0..self.parent.len() as u32 {
            let r = self.find_no_compress(v);
            self.parent[v as usize] = r;
        }
        &self.parent
    }

    /// Read-only view of the parent array.
    pub fn parents(&self) -> &[u32] {
        &self.parent
    }

    /// Length of the parent path from `v` to its representative
    /// (0 if `v` is a representative). Used by the Table 4 statistics.
    pub fn path_length(&self, v: u32) -> usize {
        let mut cur = v;
        let mut len = 0;
        loop {
            let p = self.parent[cur as usize];
            if p == cur {
                return len;
            }
            len += 1;
            cur = p;
            debug_assert!(len <= self.parent.len(), "cycle in parent array");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_strategies() -> [Compression; 4] {
        [
            Compression::None,
            Compression::Full,
            Compression::Halving,
            Compression::Splitting,
        ]
    }

    #[test]
    fn singletons_initially() {
        let ds = DisjointSets::new(5);
        assert_eq!(ds.count_sets(), 5);
        assert_eq!(ds.len(), 5);
    }

    #[test]
    fn union_find_basics_all_strategies() {
        for c in all_strategies() {
            let mut ds = DisjointSets::with_compression(10, c);
            assert!(ds.union(1, 2));
            assert!(ds.union(3, 4));
            assert!(!ds.union(2, 1), "already joined ({c:?})");
            assert!(ds.same_set(1, 2));
            assert!(!ds.same_set(1, 3));
            ds.union(2, 3);
            assert!(ds.same_set(1, 4));
            assert_eq!(ds.count_sets(), 7, "{c:?}");
        }
    }

    #[test]
    fn representative_is_minimum_after_flatten() {
        for c in all_strategies() {
            let mut ds = DisjointSets::with_compression(8, c);
            ds.union(7, 5);
            ds.union(5, 3);
            ds.union(3, 6);
            ds.flatten();
            for v in [3, 5, 6, 7] {
                assert_eq!(ds.parents()[v], 3, "{c:?}");
            }
        }
    }

    #[test]
    fn strategies_agree_on_partition() {
        // Pseudo-random union sequence; all strategies must induce the
        // same sets.
        let pairs: Vec<(u32, u32)> = (0..200u32)
            .map(|i| ((i * 7) % 50, (i * 13 + 1) % 50))
            .collect();
        let mut results = Vec::new();
        for c in all_strategies() {
            let mut ds = DisjointSets::with_compression(50, c);
            for &(a, b) in &pairs {
                ds.union(a, b);
            }
            ds.flatten();
            results.push(ds.parents().to_vec());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn halving_shortens_paths() {
        // Build a long chain 9 -> 8 -> ... -> 0 manually.
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let mut ds = DisjointSets::from_parents(parent, Compression::Halving);
        assert_eq!(ds.path_length(9), 9);
        assert_eq!(ds.find(9), 0);
        assert!(ds.path_length(9) <= 5, "halving should roughly halve");
        // Iterating find drives the path to length 1.
        ds.find(9);
        ds.find(9);
        ds.find(9);
        assert!(ds.path_length(9) <= 1);
    }

    #[test]
    fn full_compression_flattens_in_one_find() {
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let mut ds = DisjointSets::from_parents(parent, Compression::Full);
        ds.find(9);
        for v in 0..10 {
            assert!(ds.path_length(v) <= 1);
        }
    }

    #[test]
    fn no_compression_leaves_paths() {
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let mut ds = DisjointSets::from_parents(parent, Compression::None);
        assert_eq!(ds.find(9), 0);
        assert_eq!(ds.path_length(9), 9);
    }

    #[test]
    fn splitting_advances_all_elements() {
        let parent: Vec<u32> = (0..10u32).map(|v| v.saturating_sub(1)).collect();
        let mut ds = DisjointSets::from_parents(parent, Compression::Splitting);
        assert_eq!(ds.find(9), 0);
        // Every element on the path should now skip one ancestor.
        assert!(ds.path_length(9) <= 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parents_validates() {
        DisjointSets::from_parents(vec![0, 9], Compression::None);
    }

    #[test]
    fn empty_structure() {
        let ds = DisjointSets::new(0);
        assert!(ds.is_empty());
        assert_eq!(ds.count_sets(), 0);
    }

    #[test]
    fn flatten_idempotent() {
        let mut ds = DisjointSets::new(20);
        for i in 0..19 {
            ds.union(i, i + 1);
        }
        let a = ds.flatten().to_vec();
        let b = ds.flatten().to_vec();
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p == 0));
    }
}
