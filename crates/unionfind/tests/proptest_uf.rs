//! Model-based property tests: every union-find variant is checked
//! against a trivially-correct partition model over random operation
//! sequences.
//!
//! Random sequences come from the workspace's deterministic PCG32 stream
//! (fixed seeds) so the suite runs hermetically with no external
//! property-testing framework and is exactly reproducible.

use ecl_graph::generate::Pcg32;
use ecl_unionfind::{AtomicParents, Compression, DisjointSets};

/// The reference model: partition kept as a label vector where merging
/// rewrites all labels (O(n) per union, obviously correct).
#[derive(Clone)]
struct Model {
    label: Vec<u32>,
}

impl Model {
    fn new(n: usize) -> Self {
        Model {
            label: (0..n as u32).collect(),
        }
    }

    fn union(&mut self, a: u32, b: u32) {
        let (la, lb) = (self.label[a as usize], self.label[b as usize]);
        if la != lb {
            let keep = la.min(lb);
            let kill = la.max(lb);
            for l in &mut self.label {
                if *l == kill {
                    *l = keep;
                }
            }
        }
    }

    fn same(&self, a: u32, b: u32) -> bool {
        self.label[a as usize] == self.label[b as usize]
    }

    fn count(&self) -> usize {
        let mut ls: Vec<u32> = self.label.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }
}

/// Random (n, union-pairs) workload, mirroring the old proptest strategy:
/// 2..48 vertices, 0..120 operations.
fn ops(rng: &mut Pcg32) -> (usize, Vec<(u32, u32)>) {
    let n = 2 + rng.below(46) as usize;
    let len = rng.below(120) as usize;
    let pairs = (0..len)
        .map(|_| (rng.below(n as u32), rng.below(n as u32)))
        .collect();
    (n, pairs)
}

#[test]
fn sequential_matches_model() {
    let mut rng = Pcg32::new(0x5e9);
    for _ in 0..64 {
        let (n, pairs) = ops(&mut rng);
        for comp in [
            Compression::None,
            Compression::Full,
            Compression::Halving,
            Compression::Splitting,
        ] {
            let mut ds = DisjointSets::with_compression(n, comp);
            let mut model = Model::new(n);
            for &(a, b) in &pairs {
                ds.union(a, b);
                model.union(a, b);
                // Spot-check connectivity after every operation.
                assert_eq!(ds.same_set(a, b), model.same(a, b));
            }
            assert_eq!(ds.count_sets(), model.count(), "{comp:?}");
            // After flatten, labels equal component minima.
            ds.flatten();
            for v in 0..n as u32 {
                let min = (0..n as u32).filter(|&u| model.same(u, v)).min().unwrap();
                assert_eq!(ds.parents()[v as usize], min);
            }
        }
    }
}

#[test]
fn concurrent_matches_model() {
    let mut rng = Pcg32::new(0xc0c);
    for _ in 0..64 {
        let (n, pairs) = ops(&mut rng);
        let par = AtomicParents::new(n);
        let mut model = Model::new(n);
        // Apply unions from 4 threads (chunked round-robin), model serially
        // — the final partition must agree regardless of interleaving.
        let pairs_ref = &pairs;
        let par_ref = &par;
        ecl_parallel::parallel_for(
            4,
            pairs.len(),
            ecl_parallel::Schedule::Dynamic { chunk: 2 },
            move |i| {
                let (a, b) = pairs_ref[i];
                par_ref.unite(a, b);
            },
        );
        for &(a, b) in &pairs {
            model.union(a, b);
        }
        assert_eq!(par.count_sets(), model.count());
        for v in 0..n as u32 {
            let min = (0..n as u32).filter(|&u| model.same(u, v)).min().unwrap();
            assert_eq!(par.find_repres(v), min);
        }
    }
}

#[test]
fn hook_linked_counts_merges_exactly() {
    let mut rng = Pcg32::new(0x400c);
    for _ in 0..64 {
        let (n, pairs) = ops(&mut rng);
        let par = AtomicParents::new(n);
        let mut links = 0usize;
        for &(a, b) in &pairs {
            let ra = par.find_repres(a);
            let rb = par.find_repres(b);
            if par.hook_linked(ra, rb).1 {
                links += 1;
            }
        }
        // Each link reduces the set count by exactly one.
        assert_eq!(par.count_sets(), n - links);
    }
}

#[test]
fn parent_ids_never_increase() {
    // The decreasing-parent invariant underpinning all the lock-free
    // correctness arguments.
    let mut rng = Pcg32::new(0xdec);
    for _ in 0..64 {
        let (n, pairs) = ops(&mut rng);
        let par = AtomicParents::new(n);
        for &(a, b) in &pairs {
            par.unite(a, b);
            for v in 0..n as u32 {
                assert!(
                    par.parent(v) <= v,
                    "parent[{}] = {} increased",
                    v,
                    par.parent(v)
                );
            }
        }
    }
}
