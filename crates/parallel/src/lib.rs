//! OpenMP-style data-parallel loops on scoped threads.
//!
//! The paper's CPU port of ECL-CC parallelizes "the outermost loop going
//! over the vertices … with a guided schedule" (`#pragma omp parallel for
//! schedule(guided)`). This crate reimplements that substrate from scratch:
//! [`parallel_for`] distributes an index range over a team of scoped
//! threads under a [`Schedule`] (static, dynamic, or guided), and
//! [`parallel_reduce`] adds a per-thread accumulator + combine step.
//!
//! Worker threads are spawned per call with [`std::thread::scope`], which
//! keeps borrows safe without `'static` bounds and matches the paper's
//! observation that dynamic parallelization overhead (thread creation +
//! worklist maintenance) is visible on small inputs (§5.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod counters;

/// Loop-scheduling policies, mirroring OpenMP's `schedule` clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Split the range into one contiguous block per thread.
    Static,
    /// Threads repeatedly claim fixed-size chunks from a shared counter.
    Dynamic {
        /// Iterations per claim; must be ≥ 1.
        chunk: usize,
    },
    /// Chunk size starts at `remaining / nthreads` and shrinks as the loop
    /// drains, never below `min_chunk` (OpenMP `schedule(guided)`).
    Guided {
        /// Lower bound on the claimed chunk size; must be ≥ 1.
        min_chunk: usize,
    },
}

impl Schedule {
    /// The guided schedule the ECL-CC OpenMP port uses.
    pub const GUIDED: Schedule = Schedule::Guided { min_chunk: 64 };
}

/// Number of worker threads to use by default: the machine's available
/// parallelism (1 if unknown).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `body(i)` for every `i` in `0..n` across `nthreads` threads under
/// `schedule`. Blocks until every iteration has completed.
///
/// `body` observes iterations in an unspecified order and from multiple
/// threads; shared state must be synchronized (the CC algorithms use atomic
/// parent arrays precisely for this).
pub fn parallel_for<F>(nthreads: usize, n: usize, schedule: Schedule, body: F)
where
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    if n == 0 {
        return;
    }
    if nthreads == 1 || n == 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    match schedule {
        Schedule::Static => {
            std::thread::scope(|s| {
                for t in 0..nthreads {
                    let body = &body;
                    // Contiguous blocks with the remainder spread over the
                    // first `n % nthreads` threads.
                    let base = n / nthreads;
                    let extra = n % nthreads;
                    let start = t * base + t.min(extra);
                    let len = base + usize::from(t < extra);
                    s.spawn(move || {
                        for i in start..start + len {
                            body(i);
                        }
                    });
                }
            });
        }
        Schedule::Dynamic { chunk } => {
            let chunk = chunk.max(1);
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..nthreads {
                    let body = &body;
                    let next = &next;
                    s.spawn(move || loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            body(i);
                        }
                    });
                }
            });
        }
        Schedule::Guided { min_chunk } => {
            let min_chunk = min_chunk.max(1);
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..nthreads {
                    let body = &body;
                    let next = &next;
                    s.spawn(move || loop {
                        // Claim `remaining / nthreads` iterations (at least
                        // min_chunk) with a CAS so the chunk size tracks the
                        // actual remaining work.
                        let mut start = next.load(Ordering::Relaxed);
                        let end = loop {
                            if start >= n {
                                return;
                            }
                            let remaining = n - start;
                            let chunk = (remaining / nthreads).max(min_chunk).min(remaining);
                            match next.compare_exchange_weak(
                                start,
                                start + chunk,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break start + chunk,
                                Err(cur) => start = cur,
                            }
                        };
                        for i in start..end {
                            body(i);
                        }
                    });
                }
            });
        }
    }
}

/// Parallel map-reduce over `0..n`: each thread folds its slice of the
/// range into a local accumulator seeded by `init`, and the per-thread
/// results are combined left-to-right with `combine`.
pub fn parallel_reduce<T, F, C>(nthreads: usize, n: usize, init: T, fold: F, combine: C) -> T
where
    T: Clone + Send + Sync,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let nthreads = nthreads.max(1);
    if n == 0 {
        return init;
    }
    if nthreads == 1 {
        let mut acc = init;
        for i in 0..n {
            acc = fold(acc, i);
        }
        return acc;
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..nthreads).map(|_| std::sync::Mutex::new(None)).collect();
    {
        let slots = &slots;
        let fold = &fold;
        let init_ref = &init;
        parallel_for_teams(nthreads, |tid| {
            let mut acc = init_ref.clone();
            let base = n / nthreads;
            let extra = n % nthreads;
            let start = tid * base + tid.min(extra);
            let len = base + usize::from(tid < extra);
            for i in start..start + len {
                acc = fold(acc, i);
            }
            *slots[tid].lock().unwrap() = Some(acc);
        });
    }
    let mut acc = init;
    for slot in slots {
        if let Some(v) = slot.into_inner().unwrap() {
            acc = combine(acc, v);
        }
    }
    acc
}

/// Spawns a team of `nthreads` scoped workers, passing each its 0-based
/// thread ID, and joins them all. The low-level building block behind the
/// higher-level loops; exposed for algorithms that need long-lived
/// per-thread state (e.g. the BFS baselines' local worklists).
pub fn parallel_for_teams<F>(nthreads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let nthreads = nthreads.max(1);
    if nthreads == 1 {
        body(0);
        return;
    }
    std::thread::scope(|s| {
        for t in 0..nthreads {
            let body = &body;
            s.spawn(move || body(t));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn check_covers_all(nthreads: usize, n: usize, schedule: Schedule) {
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(nthreads, n, schedule, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} hit count wrong");
        }
    }

    #[test]
    fn static_covers_every_index_exactly_once() {
        for n in [0, 1, 2, 7, 100, 1001] {
            check_covers_all(4, n, Schedule::Static);
        }
    }

    #[test]
    fn dynamic_covers_every_index_exactly_once() {
        for chunk in [1, 3, 64, 10_000] {
            check_covers_all(4, 1001, Schedule::Dynamic { chunk });
        }
    }

    #[test]
    fn guided_covers_every_index_exactly_once() {
        for min_chunk in [1, 7, 64] {
            check_covers_all(4, 1001, Schedule::Guided { min_chunk });
        }
    }

    #[test]
    fn more_threads_than_work() {
        check_covers_all(16, 3, Schedule::Static);
        check_covers_all(16, 3, Schedule::Dynamic { chunk: 2 });
        check_covers_all(16, 3, Schedule::Guided { min_chunk: 4 });
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        check_covers_all(0, 10, Schedule::Static);
    }

    #[test]
    fn zero_chunk_clamped() {
        check_covers_all(4, 50, Schedule::Dynamic { chunk: 0 });
        check_covers_all(4, 50, Schedule::Guided { min_chunk: 0 });
    }

    #[test]
    fn reduce_sums_correctly() {
        let sum = parallel_reduce(4, 1000, 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn reduce_empty_range_returns_init() {
        let v = parallel_reduce(4, 0, 42u32, |a, _| a + 1, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn reduce_max() {
        let data: Vec<u32> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let data_ref = &data;
        let m = parallel_reduce(
            3,
            data.len(),
            0u32,
            move |a, i| a.max(data_ref[i]),
            |a, b| a.max(b),
        );
        assert_eq!(m, *data.iter().max().unwrap());
    }

    #[test]
    fn teams_see_distinct_ids() {
        let seen: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
        parallel_for_teams(8, |tid| {
            seen[tid].fetch_add(1, Ordering::Relaxed);
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_threads_nonzero() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn panicking_body_propagates_not_deadlocks() {
        // A panic inside one iteration must surface to the caller (via the
        // scope join) rather than hanging the team.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for(4, 100, Schedule::Dynamic { chunk: 4 }, |i| {
                if i == 57 {
                    panic!("injected failure");
                }
            });
        }));
        assert!(result.is_err(), "panic was swallowed");
    }

    #[test]
    fn parallel_writes_disjoint_slots() {
        // Each iteration owns slot i; values must land untorn.
        let n = 5000;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(8, n, Schedule::Dynamic { chunk: 13 }, |i| {
            out[i].store((i * i) as u64, Ordering::Relaxed);
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), (i * i) as u64);
        }
    }
}
