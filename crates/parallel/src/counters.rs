//! Cache-friendly shared counters used by the worklist-driven algorithms.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A monotone work counter threads claim chunks from.
///
/// Equivalent to the shared index underlying dynamic scheduling, exposed
/// for algorithms (e.g. the BFS baselines) that manage their own frontier
/// arrays and need chunked claiming over a changing bound.
#[derive(Debug, Default)]
pub struct WorkCounter {
    next: AtomicUsize,
}

impl WorkCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        WorkCounter {
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next `chunk` indices below `limit`; returns the claimed
    /// half-open range, or `None` when the range is exhausted.
    #[inline]
    pub fn claim(&self, chunk: usize, limit: usize) -> Option<(usize, usize)> {
        let chunk = chunk.max(1);
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= limit {
            None
        } else {
            Some((start, (start + chunk).min(limit)))
        }
    }

    /// Resets the counter to zero (only call between parallel phases).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// A pair of cursors growing toward each other from the two ends of one
/// shared buffer — the paper's **double-sided worklist** ("ECL-CC utilizes
/// a double-sided worklist of size n, which the first kernel populates on
/// one side with the vertices for the second kernel and on the other side
/// with the vertices for the third kernel", §3).
#[derive(Debug)]
pub struct DoubleSidedCursors {
    capacity: usize,
    front: AtomicUsize,
    /// Stored as "slots taken from the back" so both sides only grow.
    back: AtomicUsize,
}

impl DoubleSidedCursors {
    /// Cursors over a buffer of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        DoubleSidedCursors {
            capacity,
            front: AtomicUsize::new(0),
            back: AtomicUsize::new(0),
        }
    }

    /// Claims one slot at the front; `None` when the two sides would collide.
    #[inline]
    pub fn push_front(&self) -> Option<usize> {
        let i = self.front.fetch_add(1, Ordering::Relaxed);
        if i + self.back.load(Ordering::Relaxed) >= self.capacity {
            self.front.fetch_sub(1, Ordering::Relaxed);
            None
        } else {
            Some(i)
        }
    }

    /// Claims one slot at the back (index counts down from `capacity - 1`);
    /// `None` when full.
    #[inline]
    pub fn push_back(&self) -> Option<usize> {
        let i = self.back.fetch_add(1, Ordering::Relaxed);
        if self.front.load(Ordering::Relaxed) + i >= self.capacity {
            self.back.fetch_sub(1, Ordering::Relaxed);
            None
        } else {
            Some(self.capacity - 1 - i)
        }
    }

    /// Number of slots taken at the front.
    pub fn front_len(&self) -> usize {
        self.front.load(Ordering::Relaxed)
    }

    /// Number of slots taken at the back.
    pub fn back_len(&self) -> usize {
        self.back.load(Ordering::Relaxed)
    }

    /// Total buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel_for_teams;

    #[test]
    fn claim_covers_range_without_overlap() {
        let c = WorkCounter::new();
        let mut seen = vec![false; 1000];
        while let Some((s, e)) = c.claim(7, 1000) {
            for slot in seen.iter_mut().take(e).skip(s) {
                assert!(!*slot);
                *slot = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn claim_respects_limit() {
        let c = WorkCounter::new();
        let (s, e) = c.claim(100, 42).unwrap();
        assert_eq!((s, e), (0, 42));
        assert!(c.claim(100, 42).is_none());
    }

    #[test]
    fn reset_allows_reuse() {
        let c = WorkCounter::new();
        assert!(c.claim(10, 10).is_some());
        assert!(c.claim(10, 10).is_none());
        c.reset();
        assert!(c.claim(10, 10).is_some());
    }

    #[test]
    fn double_sided_slots_disjoint() {
        let c = DoubleSidedCursors::new(100);
        let mut used = [false; 100];
        for k in 0..100 {
            let slot = if k % 2 == 0 {
                c.push_front()
            } else {
                c.push_back()
            };
            let slot = slot.expect("capacity 100 should fit 100 pushes");
            assert!(!used[slot], "slot {slot} reused");
            used[slot] = true;
        }
        assert!(c.push_front().is_none());
        assert!(c.push_back().is_none());
        assert_eq!(c.front_len() + c.back_len(), 100);
    }

    #[test]
    fn double_sided_concurrent_no_collision() {
        let c = DoubleSidedCursors::new(10_000);
        let slots: Vec<std::sync::atomic::AtomicUsize> = (0..10_000)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        parallel_for_teams(8, |tid| {
            for k in 0..1000 {
                let slot = if (tid + k) % 2 == 0 {
                    c.push_front().unwrap()
                } else {
                    c.push_back().unwrap()
                };
                slots[slot].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        let taken: usize = slots
            .iter()
            .map(|s| s.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        assert_eq!(taken, 8000);
        assert!(slots
            .iter()
            .all(|s| s.load(std::sync::atomic::Ordering::Relaxed) <= 1));
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let c = DoubleSidedCursors::new(0);
        assert!(c.push_front().is_none());
        assert!(c.push_back().is_none());
    }
}
