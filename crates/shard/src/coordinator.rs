//! The sharded-execution coordinator.
//!
//! [`run_sharded`] drives the whole multi-device pipeline:
//!
//! 1. **Partition** — [`ecl_graph::partition::partition_blocks`] splits
//!    the graph into contiguous-block shards with ghost replicas.
//! 2. **Local solve** — each shard runs ECL-CC on its own simulated
//!    [`Gpu`] (one device per shard, concurrently on host threads).
//!    Because each shard numbers vertices in ascending global order,
//!    the local component labels map straight back to *global minima
//!    over the locally visible part* of each component.
//! 3. **Exchange** — devices iterate min-label exchange rounds for the
//!    shared (boundary + ghost) vertices over a simulated
//!    [`Interconnect`]: every frame is digest-verified and
//!    retransmitted on drop or corruption, so injected interconnect
//!    faults cost latency, never answers. The fixpoint is a round in
//!    which no label anywhere improves.
//! 4. **Checkpoint** — after every round the coordinator persists the
//!    label frontier crash-safely (write-temp-fsync-rename).
//! 5. **Recover** — an injected device crash (`device_crash_at_round`)
//!    loses every shard the device hosted; the coordinator reassigns
//!    them to surviving devices, re-runs their local solve, folds the
//!    checkpointed frontier back in, and keeps exchanging in degraded
//!    N−1 mode. Past [`ShardConfig::crash_budget`] crashes (or with no
//!    surviving device) it degrades to the single-device fallback
//!    ladder.
//!
//! Correctness rests on the min-wins argument (Sutton, Ben-Nun & Barak,
//! arXiv:1612.01178): every label ever held for a vertex is the ID of
//! *some* vertex in its component, updates only ever lower labels
//! (monotone), and at fixpoint every shared vertex's label has
//! propagated across every shard boundary its component crosses — so
//! each component converges on its global minimum ID, which is exactly
//! the single-device serial answer, byte for byte. Replaying from an
//! older checkpoint (or from scratch) after a crash only *raises*
//! labels back toward their local values, which later rounds re-lower:
//! recovery can cost rounds, never correctness.

use crate::checkpoint::{read_checkpoint, write_checkpoint};
use crate::interconnect::{ExchangeStats, Interconnect, LinkModel};
use ecl_cc::ladder::{self, LadderConfig};
use ecl_cc::{CcResult, EclConfig, EclError};
use ecl_gpu_sim::{DeviceProfile, ExecMode, FaultPlan, FaultRng, Gpu};
use ecl_graph::partition::{partition_blocks, Partition};
use ecl_graph::{CsrGraph, Vertex};
use ecl_obs::{Recorder, TraceEvent, PID_ENGINE};
use ecl_verify::Certificate;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Configuration for a sharded run.
#[derive(Clone)]
pub struct ShardConfig {
    /// Number of shards (= simulated devices before any crash); min 1.
    pub shards: usize,
    /// Algorithm configuration for every local solve (and the degraded
    /// ladder).
    pub cc: EclConfig,
    /// Device profile for every simulated device.
    pub profile: DeviceProfile,
    /// Fault plan: the simulator knobs perturb each local solve, the
    /// interconnect knobs (`drop=`/`corrupt=`/`crash=`) perturb the
    /// exchange, all from one seed.
    pub fault: FaultPlan,
    /// Per-kernel cycle budget for each device's watchdog, if any.
    pub watchdog: Option<u64>,
    /// Execution mode for each device's local solve.
    pub exec: ExecMode,
    /// Threads for the parallel-CPU stage of the degraded ladder.
    pub threads: usize,
    /// Interconnect latency model.
    pub link: LinkModel,
    /// Directory for round-boundary label-frontier checkpoints; `None`
    /// disables checkpointing (crash recovery then restarts lost shards
    /// from their local solve, which is slower but still exact).
    pub checkpoint_dir: Option<PathBuf>,
    /// Device crashes tolerated before degrading to the single-device
    /// ladder. 0 degrades on the first crash.
    pub crash_budget: u32,
    /// Observability recorder: per-device kernel timelines (via
    /// `set_timeline_origin`), round spans, crash/recovery instants,
    /// and `shard.*` metrics.
    pub recorder: Option<Recorder>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 2,
            cc: EclConfig::default(),
            profile: DeviceProfile::test_tiny(),
            fault: FaultPlan::none(),
            watchdog: None,
            exec: ExecMode::Serial,
            threads: 4,
            link: LinkModel::default(),
            checkpoint_dir: None,
            crash_budget: 1,
            recorder: None,
        }
    }
}

/// Everything the coordinator can report about one sharded run.
#[derive(Clone, Debug, Default)]
pub struct ShardReport {
    /// Shards (= devices at start).
    pub shards: usize,
    /// Exchange rounds until fixpoint (0 when a single shard needed no
    /// exchange at all).
    pub rounds: u64,
    /// Global vertices replicated on more than one shard.
    pub shared_vertices: usize,
    /// Interconnect counters (frames, retransmits, bytes, cycles).
    pub exchange: ExchangeStats,
    /// Injected device crashes absorbed.
    pub device_crashes: u32,
    /// Shards re-hosted and re-solved after a crash.
    pub shards_recovered: u32,
    /// Whether the run fell back to the single-device ladder.
    pub degraded: bool,
    /// Simulated cycles spent in local solves (sum over devices),
    /// including recovery re-solves.
    pub local_cycles: u64,
    /// Simulated cycles spent re-solving lost shards during recovery
    /// (subset of `local_cycles` — the recovery-overhead number the
    /// bench records).
    pub recovery_cycles: u64,
    /// Local solves that fell back to serial CPU after repeated
    /// simulator faults.
    pub local_serial_fallbacks: u32,
    /// Round-boundary checkpoints written.
    pub checkpoint_writes: u64,
    /// Checkpoint writes that failed (checkpointing is best-effort;
    /// failures weaken recovery, never correctness).
    pub checkpoint_errors: u64,
}

impl ShardReport {
    /// Flat JSON object (hand-rolled, like every report here).
    pub fn to_json(&self) -> String {
        ecl_obs::json::Obj::new()
            .u64("shards", self.shards as u64)
            .u64("rounds", self.rounds)
            .u64("shared_vertices", self.shared_vertices as u64)
            .u64("frames_sent", self.exchange.frames_sent)
            .u64("retransmits", self.exchange.retransmits)
            .u64("frames_dropped", self.exchange.drops)
            .u64("frames_corrupted", self.exchange.corruptions)
            .u64("exchange_bytes", self.exchange.bytes_sent)
            .u64("exchange_cycles", self.exchange.cycles)
            .u64("device_crashes", self.device_crashes as u64)
            .u64("shards_recovered", self.shards_recovered as u64)
            .bool("degraded", self.degraded)
            .u64("local_cycles", self.local_cycles)
            .u64("recovery_cycles", self.recovery_cycles)
            .u64("local_serial_fallbacks", self.local_serial_fallbacks as u64)
            .u64("checkpoint_writes", self.checkpoint_writes)
            .u64("checkpoint_errors", self.checkpoint_errors)
            .build()
    }
}

/// A certified sharded result.
pub struct ShardOutcome {
    /// The accepted labeling — byte-identical to single-device serial.
    pub result: CcResult,
    /// The verifier's certificate (canonical: labels are component
    /// minima).
    pub certificate: Certificate,
    /// Run statistics.
    pub report: ShardReport,
}

/// Per-shard runtime state: the local union-find outcome plus the
/// current best-known global label per local component.
struct ShardState {
    /// `local vertex → local root` from the local solve (local roots
    /// are local minima, hence global minima of the locally visible
    /// component fragment, by the monotone-remap invariant).
    comp_of: Vec<Vertex>,
    /// `local root → best-known global label` (entries for non-roots
    /// are unused).
    comp_label: Vec<Vertex>,
    /// Device currently hosting this shard.
    device: usize,
}

impl ShardState {
    fn label_of(&self, local: Vertex) -> Vertex {
        self.comp_label[self.comp_of[local as usize] as usize]
    }
}

/// Outcome of one local solve.
struct LocalSolve {
    labels: Vec<Vertex>,
    cycles: u64,
    serial_fallback: bool,
}

/// Strips the interconnect- and network-flavored knobs off a plan so
/// the simulated devices keep their fast path when only exchange faults
/// are requested.
fn sim_only(plan: &FaultPlan) -> FaultPlan {
    FaultPlan {
        frame_drop_permille: 0,
        frame_corrupt_permille: 0,
        device_crash_at_round: 0,
        frame_truncate_permille: 0,
        stall_permille: 0,
        disconnect_permille: 0,
        ..*plan
    }
}

/// Runs ECL-CC on one shard on a fresh simulated device. Simulator
/// faults are retried once on a reseeded device; a second failure falls
/// back to serial CPU (all backends agree byte-for-byte, so the
/// substitution is invisible downstream).
fn solve_local(
    shard_graph: &CsrGraph,
    cfg: &ShardConfig,
    device: usize,
    timeline_origin: u64,
) -> LocalSolve {
    for attempt in 0..2u64 {
        let mut gpu = Gpu::new(cfg.profile.clone());
        gpu.set_exec_mode(cfg.exec);
        let mut plan = sim_only(&cfg.fault);
        // Per-(device, attempt) seed, like the ladder's per-attempt
        // reseed, so a deterministic watchdog trip is not retried into
        // the identical wall.
        plan.seed = plan
            .seed
            .wrapping_add((device as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add(attempt);
        gpu.set_fault_plan(plan);
        gpu.set_watchdog(cfg.watchdog);
        if let Some(r) = &cfg.recorder {
            gpu.set_recorder(Some(r.clone()));
            gpu.set_timeline_origin(timeline_origin);
        }
        if let Ok((res, _)) = ecl_cc::gpu::try_run(&mut gpu, shard_graph, &cfg.cc) {
            return LocalSolve {
                labels: res.labels,
                cycles: gpu.total_cycles(),
                serial_fallback: false,
            };
        }
    }
    LocalSolve {
        labels: ecl_cc::serial::run(shard_graph, &cfg.cc).labels,
        cycles: 0,
        serial_fallback: true,
    }
}

/// Builds fresh per-shard state from a local solve: every local
/// component starts labeled with the global ID of its local root.
fn fresh_state(part: &Partition, shard: usize, solve: &LocalSolve, device: usize) -> ShardState {
    let sg = &part.shards[shard];
    ShardState {
        comp_of: solve.labels.clone(),
        comp_label: sg.globals.clone(),
        device,
    }
}

/// Folds a checkpointed frontier into a (re-)solved shard: each local
/// component takes the minimum checkpointed label over its members.
fn restore_from_frontier(part: &Partition, shard: usize, state: &mut ShardState, frontier: &[u32]) {
    let sg = &part.shards[shard];
    for local in 0..sg.globals.len() {
        let cand = frontier[sg.globals[local] as usize];
        let root = state.comp_of[local] as usize;
        if cand < state.comp_label[root] {
            state.comp_label[root] = cand;
        }
    }
}

/// Assembles the global label array from each owner shard's view.
fn assemble_labels(part: &Partition, states: &[ShardState]) -> Vec<Vertex> {
    let mut labels = vec![0 as Vertex; part.num_vertices];
    for (s, sg) in part.shards.iter().enumerate() {
        for local in 0..sg.globals.len() as Vertex {
            let global = sg.to_global(local);
            if sg.owns(global) {
                labels[global as usize] = states[s].label_of(local);
            }
        }
    }
    labels
}

/// Degrades to the single-device fallback ladder (crash budget
/// exhausted, no surviving device, or a dead interconnect link).
fn degrade(
    g: &CsrGraph,
    cfg: &ShardConfig,
    mut report: ShardReport,
) -> Result<ShardOutcome, EclError> {
    report.degraded = true;
    if let Some(r) = &cfg.recorder {
        r.record(TraceEvent::instant(
            "shard.degrade",
            "shard",
            PID_ENGINE,
            0,
            r.now_us(),
        ));
        r.add_metric("shard.degraded", 1.0);
    }
    let ladder_cfg = LadderConfig {
        cc: cfg.cc,
        threads: cfg.threads,
        profile: cfg.profile.clone(),
        fault: sim_only(&cfg.fault),
        watchdog: cfg.watchdog,
        exec: cfg.exec,
        recorder: cfg.recorder.clone(),
        ..LadderConfig::default()
    };
    let outcome = ladder::run_with_fallback(g, &ladder_cfg)?;
    Ok(ShardOutcome {
        result: outcome.result,
        certificate: outcome.certificate,
        report,
    })
}

/// Runs sharded multi-device ECL-CC (see the module docs for the
/// pipeline). The returned labeling is certified canonical — i.e.
/// byte-identical to single-device serial ECL-CC.
pub fn run_sharded(g: &CsrGraph, cfg: &ShardConfig) -> Result<ShardOutcome, EclError> {
    let num_shards = cfg.shards.max(1);
    let mut report = ShardReport {
        shards: num_shards,
        ..ShardReport::default()
    };

    let part = partition_blocks(g, num_shards);
    let shared = part.shared_vertices();
    report.shared_vertices = shared.len();

    // Exchange topology: for every ordered shard pair, the shared
    // vertices both host (BTreeMap ⇒ deterministic iteration order).
    let mut pair_verts: BTreeMap<(usize, usize), Vec<Vertex>> = BTreeMap::new();
    for (v, hosts) in &shared {
        for &a in hosts {
            for &b in hosts {
                if a != b {
                    pair_verts.entry((a, b)).or_default().push(*v);
                }
            }
        }
    }

    // ---- local solves: one device per shard, concurrently ------------
    // Per-device trace timelines: device d's kernel spans live in their
    // own origin window so one recorder can hold all devices.
    const TIMELINE_STRIDE: u64 = 1 << 33;
    let solves: Vec<LocalSolve> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..num_shards)
            .map(|s| {
                let sg = &part.shards[s];
                scope.spawn(move || solve_local(&sg.graph, cfg, s, s as u64 * TIMELINE_STRIDE))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut next_origin = num_shards as u64 * TIMELINE_STRIDE;
    for s in &solves {
        report.local_cycles += s.cycles;
        report.local_serial_fallbacks += s.serial_fallback as u32;
    }

    let mut states: Vec<ShardState> = solves
        .iter()
        .enumerate()
        .map(|(s, solve)| fresh_state(&part, s, solve, s))
        .collect();
    let mut alive = vec![true; num_shards];

    let mut net = Interconnect::new(&cfg.fault, cfg.link);
    let mut crash_rng = FaultRng::new(cfg.fault.seed, 0x0c4a_54ed);
    let mut crash_pending = cfg.fault.device_crash_at_round;
    let mut crashes: u32 = 0;

    let write_frontier =
        |round: u64, crashes: u32, states: &[ShardState], rep: &mut ShardReport| {
            if let Some(dir) = &cfg.checkpoint_dir {
                let labels = assemble_labels(&part, states);
                match write_checkpoint(dir, round, crashes, &labels) {
                    Ok(()) => rep.checkpoint_writes += 1,
                    Err(_) => rep.checkpoint_errors += 1,
                }
            }
        };

    // Round 0 boundary: the frontier right after the local solves.
    write_frontier(0, 0, &states, &mut report);

    // ---- exchange rounds to fixpoint ----------------------------------
    // Convergence bound: each round at fixpoint-distance propagates
    // every component's minimum at least one shard further along the
    // component's shard-quotient graph, whose diameter is < #shards;
    // crashes reset at most the lost shards. The hard cap only guards
    // against coordinator bugs.
    let max_rounds = 10 * num_shards as u64 + 16 + cfg.fault.device_crash_at_round;
    let mut round: u64 = 0;
    loop {
        round += 1;
        if round > max_rounds {
            // Should be unreachable; fail safe into the ladder.
            return degrade(g, cfg, report);
        }

        // Injected device crash at the start of this round.
        if crash_pending == round {
            crash_pending = 0;
            crashes += 1;
            report.device_crashes = crashes;
            let live: Vec<usize> = (0..num_shards).filter(|&d| alive[d]).collect();
            let victim = live[crash_rng.below(live.len() as u64) as usize];
            alive[victim] = false;
            if let Some(r) = &cfg.recorder {
                r.record(TraceEvent::instant(
                    &format!("shard.crash device={victim}"),
                    "shard",
                    PID_ENGINE,
                    0,
                    r.now_us(),
                ));
            }
            let survivors: Vec<usize> = (0..num_shards).filter(|&d| alive[d]).collect();
            if crashes > cfg.crash_budget || survivors.is_empty() {
                return degrade(g, cfg, report);
            }
            // Reassign and re-solve every shard the victim hosted, then
            // fold the checkpointed frontier back in. Survivor shards
            // keep their (possibly further-converged) in-memory state.
            let frontier = cfg
                .checkpoint_dir
                .as_deref()
                .and_then(read_checkpoint)
                .map(|ck| ck.labels);
            let lost: Vec<usize> = (0..num_shards)
                .filter(|&s| states[s].device == victim)
                .collect();
            for (i, &s) in lost.iter().enumerate() {
                let new_device = survivors[i % survivors.len()];
                let solve = solve_local(&part.shards[s].graph, cfg, new_device, next_origin);
                next_origin += TIMELINE_STRIDE;
                report.local_cycles += solve.cycles;
                report.recovery_cycles += solve.cycles;
                report.local_serial_fallbacks += solve.serial_fallback as u32;
                states[s] = fresh_state(&part, s, &solve, new_device);
                if let Some(f) = &frontier {
                    restore_from_frontier(&part, s, &mut states[s], f);
                }
                report.shards_recovered += 1;
                if let Some(r) = &cfg.recorder {
                    r.record(TraceEvent::instant(
                        &format!("shard.recover shard={s} device={new_device}"),
                        "shard",
                        PID_ENGINE,
                        0,
                        r.now_us(),
                    ));
                }
            }
        }

        let round_t0 = cfg.recorder.as_ref().map(|r| r.now_us());
        let mut changed = false;
        for (&(src, dst), verts) in &pair_verts {
            let payload: Vec<(u32, u32)> = verts
                .iter()
                .map(|&v| {
                    let lv = part.shards[src]
                        .to_local(v)
                        .expect("host maps shared vertex");
                    (v, states[src].label_of(lv))
                })
                .collect();
            // Shards co-hosted on one device after recovery exchange
            // through device memory, not the interconnect.
            let delivered = if states[src].device == states[dst].device {
                payload
            } else {
                match net.transmit(states[src].device, states[dst].device, round, &payload) {
                    Ok(d) => d,
                    Err(_dead_link) => {
                        // A link that exhausts its retransmission budget
                        // is indistinguishable from a lost device: fault
                        // containment is the ladder.
                        report.exchange = net.stats;
                        return degrade(g, cfg, report);
                    }
                }
            };
            let st = &mut states[dst];
            for (v, label) in delivered {
                let lv = part.shards[dst]
                    .to_local(v)
                    .expect("host maps shared vertex");
                let root = st.comp_of[lv as usize] as usize;
                if label < st.comp_label[root] {
                    st.comp_label[root] = label;
                    changed = true;
                }
            }
        }

        if let (Some(r), Some(t0)) = (&cfg.recorder, round_t0) {
            let now = r.now_us();
            r.record(TraceEvent::span(
                &format!("shard.round {round}"),
                "shard",
                PID_ENGINE,
                0,
                t0,
                now.saturating_sub(t0).max(1),
            ));
        }

        if !changed && crash_pending == 0 {
            // A genuine fixpoint — but only once the scheduled crash
            // (if any) has fired, so a fast-converging run still
            // exercises its fault schedule.
            report.rounds = round;
            break;
        }
        write_frontier(round, crashes, &states, &mut report);
    }
    report.exchange = net.stats;

    // ---- assemble, certify, report ------------------------------------
    let labels = assemble_labels(&part, &states);
    let certificate = ecl_verify::certify_canonical(g, &labels).map_err(EclError::Verification)?;
    if let Some(r) = &cfg.recorder {
        r.add_metric("shard.devices", num_shards as f64);
        r.add_metric("shard.rounds", report.rounds as f64);
        r.add_metric("shard.shared_vertices", report.shared_vertices as f64);
        r.add_metric("shard.frames_sent", report.exchange.frames_sent as f64);
        r.add_metric("shard.retransmits", report.exchange.retransmits as f64);
        r.add_metric("shard.exchange_bytes", report.exchange.bytes_sent as f64);
        r.add_metric("shard.exchange_cycles", report.exchange.cycles as f64);
        r.add_metric("shard.crashes", report.device_crashes as f64);
        r.add_metric("shard.recovered", report.shards_recovered as f64);
        r.add_metric("shard.checkpoints", report.checkpoint_writes as f64);
        r.add_metric("shard.local_cycles", report.local_cycles as f64);
        r.add_metric("shard.recovery_cycles", report.recovery_cycles as f64);
    }
    Ok(ShardOutcome {
        result: CcResult { labels },
        certificate,
        report,
    })
}
