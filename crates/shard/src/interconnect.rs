//! Simulated device-to-device interconnect with verified frames.
//!
//! Exchange frames between simulated devices travel over an
//! [`Interconnect`] that models transfer latency (base cost plus a
//! per-byte charge, NVLink-shaped) and injects seeded faults from the
//! [`FaultPlan`] interconnect knobs: a frame can be *dropped* in flight
//! (the receiver never sees it and the sender retransmits after a
//! timeout) or *corrupted* (delivered with flipped payload bytes).
//! Every frame carries an FNV-1a digest over its header and payload;
//! the receiver recomputes it and NAKs on mismatch, so corruption is
//! always detected and always answered by a retransmission — a corrupt
//! frame can delay convergence but never poison a label.
//!
//! All fault decisions come from a [`FaultRng`] stream derived from the
//! plan seed, so a given (plan, exchange schedule) pair replays
//! bit-for-bit — the property the chaos matrix in the test suite and
//! `ci.sh` relies on.

use ecl_gpu_sim::{FaultPlan, FaultRng};

/// FNV-1a 64-bit digest — the same construction the engine journal and
/// serve snapshots use (kept local: `ecl-shard` sits below the engine
/// in the crate graph).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Latency model for one link: `base_cycles + bytes * cycles_per_byte`
/// per frame attempt (retransmissions pay full price again, plus a
/// timeout penalty for drops).
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    /// Fixed per-frame cost (launch + handshake).
    pub base_cycles: u64,
    /// Marginal cost per transferred byte.
    pub cycles_per_byte: u64,
    /// Extra cycles the receiver waits before declaring a frame lost.
    pub timeout_cycles: u64,
}

impl Default for LinkModel {
    fn default() -> Self {
        // Loosely NVLink-shaped at the simulator's cycle scale: a few
        // microseconds of fixed cost, ~4 bytes per cycle of bandwidth.
        LinkModel {
            base_cycles: 2_000,
            cycles_per_byte: 1,
            timeout_cycles: 10_000,
        }
    }
}

/// Terminal interconnect failure: a frame could not be delivered within
/// the retransmission budget (only reachable under extreme fault
/// plans). The coordinator treats this like a device loss.
#[derive(Clone, Debug)]
pub struct LinkError {
    /// Sending device.
    pub src: usize,
    /// Receiving device.
    pub dst: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link {}->{} dead: frame undeliverable after {} attempts",
            self.src, self.dst, self.attempts
        )
    }
}

/// Cumulative interconnect counters (also surfaced as `shard.*`
/// metrics and in `BENCH_sharded.json`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExchangeStats {
    /// Frames put on the wire, including retransmissions.
    pub frames_sent: u64,
    /// Frames retransmitted after a drop or digest mismatch.
    pub retransmits: u64,
    /// Frames dropped in flight by fault injection.
    pub drops: u64,
    /// Frames delivered with a digest mismatch (NAKed).
    pub corruptions: u64,
    /// Bytes transferred, including retransmissions.
    pub bytes_sent: u64,
    /// Modeled transfer cycles, including timeouts and retransmissions.
    pub cycles: u64,
}

/// Maximum delivery attempts per frame before the link is declared
/// dead. 64 retries survive any permille below 1000 with astronomical
/// probability while still terminating on a 100%-loss plan.
const MAX_ATTEMPTS: u32 = 64;

/// The simulated interconnect shared by all device pairs.
#[derive(Debug)]
pub struct Interconnect {
    model: LinkModel,
    drop_permille: u32,
    corrupt_permille: u32,
    rng: FaultRng,
    /// Cumulative counters.
    pub stats: ExchangeStats,
}

impl Interconnect {
    /// Builds the interconnect for a fault plan. The RNG stream constant
    /// separates interconnect decisions from the simulator launches that
    /// share the same plan seed.
    pub fn new(plan: &FaultPlan, model: LinkModel) -> Interconnect {
        Interconnect {
            model,
            drop_permille: plan.frame_drop_permille,
            corrupt_permille: plan.frame_corrupt_permille,
            rng: FaultRng::new(plan.seed, 0x01c0_77ec7),
            stats: ExchangeStats::default(),
        }
    }

    /// Serialized size of a frame carrying `pairs` (vertex, label)
    /// pairs: 24-byte header (src, dst, round), 8-byte digest, 8 bytes
    /// per pair.
    pub fn frame_bytes(pairs: usize) -> u64 {
        32 + 8 * pairs as u64
    }

    /// Transmits one frame of `(global vertex, label)` pairs from
    /// device `src` to device `dst`, retransmitting on drop or digest
    /// mismatch until delivered (or the attempt budget is exhausted).
    /// Returns the payload exactly as the receiver decoded it.
    pub fn transmit(
        &mut self,
        src: usize,
        dst: usize,
        round: u64,
        payload: &[(u32, u32)],
    ) -> Result<Vec<(u32, u32)>, LinkError> {
        // Wire encoding: header then payload pairs, all little-endian.
        let mut wire = Vec::with_capacity(24 + payload.len() * 8);
        wire.extend_from_slice(&(src as u64).to_le_bytes());
        wire.extend_from_slice(&(dst as u64).to_le_bytes());
        wire.extend_from_slice(&round.to_le_bytes());
        for &(v, l) in payload {
            wire.extend_from_slice(&v.to_le_bytes());
            wire.extend_from_slice(&l.to_le_bytes());
        }
        let digest = fnv1a(&wire);
        let bytes = Self::frame_bytes(payload.len());

        for attempt in 1..=MAX_ATTEMPTS {
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += bytes;
            self.stats.cycles += self.model.base_cycles + bytes * self.model.cycles_per_byte;
            if attempt > 1 {
                self.stats.retransmits += 1;
            }

            if self.rng.chance(self.drop_permille) {
                // Lost in flight: the receiver times out, the sender
                // retransmits.
                self.stats.drops += 1;
                self.stats.cycles += self.model.timeout_cycles;
                continue;
            }

            let mut delivered = wire.clone();
            if self.rng.chance(self.corrupt_permille) {
                // Flip one payload byte (or a header byte on a tiny
                // frame) at a seeded position.
                let pos = self.rng.below(delivered.len() as u64) as usize;
                delivered[pos] ^= 0x40 | (1 + (self.rng.next_u64() as u8 & 0x3f));
            }
            if fnv1a(&delivered) != digest {
                // Receiver NAKs; sender retransmits.
                self.stats.corruptions += 1;
                continue;
            }

            // Decode from the delivered bytes — not the original
            // payload — so the digest really is the only thing standing
            // between a corrupt frame and a poisoned label.
            let decoded = delivered[24..]
                .chunks_exact(8)
                .map(|c| {
                    (
                        u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                        u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    )
                })
                .collect();
            return Ok(decoded);
        }
        Err(LinkError {
            src,
            dst,
            attempts: MAX_ATTEMPTS,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(drop: u32, corrupt: u32, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            frame_drop_permille: drop,
            frame_corrupt_permille: corrupt,
            ..FaultPlan::none()
        }
    }

    #[test]
    fn clean_link_delivers_verbatim_and_charges_latency() {
        let mut net = Interconnect::new(&plan(0, 0, 1), LinkModel::default());
        let payload: Vec<(u32, u32)> = (0..10).map(|i| (i, i * 2)).collect();
        let got = net.transmit(0, 1, 1, &payload).unwrap();
        assert_eq!(got, payload);
        assert_eq!(net.stats.frames_sent, 1);
        assert_eq!(net.stats.retransmits, 0);
        assert_eq!(net.stats.bytes_sent, Interconnect::frame_bytes(10));
        assert!(net.stats.cycles >= 2_000);
    }

    #[test]
    fn faulty_link_retransmits_until_payload_arrives_intact() {
        let mut net = Interconnect::new(&plan(300, 300, 42), LinkModel::default());
        let payload: Vec<(u32, u32)> = (0..64).map(|i| (i, 1000 + i)).collect();
        for round in 1..=50 {
            let got = net
                .transmit(round as usize % 3, 1, round, &payload)
                .unwrap();
            assert_eq!(got, payload, "round {round} delivered a corrupted payload");
        }
        assert!(
            net.stats.retransmits > 0,
            "30%/30% drop/corrupt over 50 frames must retransmit at least once"
        );
        assert_eq!(
            net.stats.frames_sent,
            50 + net.stats.retransmits,
            "every extra frame is accounted as a retransmission"
        );
        assert!(net.stats.drops + net.stats.corruptions == net.stats.retransmits);
    }

    #[test]
    fn total_loss_reports_a_dead_link() {
        let mut net = Interconnect::new(&plan(1000, 0, 7), LinkModel::default());
        let err = net.transmit(2, 5, 9, &[(1, 1)]).unwrap_err();
        assert_eq!((err.src, err.dst), (2, 5));
        assert_eq!(err.attempts, MAX_ATTEMPTS);
    }

    #[test]
    fn replays_bit_for_bit_per_seed() {
        let run = |seed| {
            let mut net = Interconnect::new(&plan(200, 200, seed), LinkModel::default());
            for r in 0..20 {
                net.transmit(0, 1, r, &[(r as u32, 2 * r as u32)]).unwrap();
            }
            net.stats
        };
        let (a, b, c) = (run(5), run(5), run(6));
        assert_eq!(a.frames_sent, b.frames_sent);
        assert_eq!(a.cycles, b.cycles);
        assert_ne!(
            (a.frames_sent, a.cycles),
            (c.frames_sent, c.cycles),
            "different seeds should draw different fault schedules"
        );
    }

    #[test]
    fn empty_payload_frames_still_flow() {
        let mut net = Interconnect::new(&plan(100, 100, 3), LinkModel::default());
        assert_eq!(net.transmit(0, 1, 1, &[]).unwrap(), Vec::new());
    }
}
