//! Crash-safe label-frontier checkpoints.
//!
//! At every exchange-round boundary the coordinator persists the
//! current best-known label of every global vertex. The file is written
//! with the workspace's write-temp-fsync-rename discipline, so a crash
//! at any byte leaves either the previous complete checkpoint or the
//! new one — never a torn hybrid. A digest over the label section makes
//! silent corruption detectable: a checkpoint that does not verify is
//! treated as absent (recovery then restarts the lost shard from its
//! local run, which the min-wins monotonicity argument makes safe —
//! resuming from *older* labels can only cost extra rounds, never
//! correctness).

use crate::interconnect::fnv1a;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Checkpoint file name inside the checkpoint directory.
pub const CKPT_FILE: &str = "frontier.ckpt";

/// A parsed label-frontier checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Exchange round after which this frontier was captured (0 =
    /// after the local runs, before any exchange).
    pub round: u64,
    /// Device crashes already absorbed when the frontier was captured.
    pub crashes: u32,
    /// Best-known global label per global vertex.
    pub labels: Vec<u32>,
}

/// Serializes `labels` into the checkpoint body (one decimal label per
/// line — greppable, like every other persistent artifact here).
fn body_bytes(labels: &[u32]) -> Vec<u8> {
    let mut body = String::with_capacity(labels.len() * 8);
    for &l in labels {
        body.push_str(&l.to_string());
        body.push('\n');
    }
    body.into_bytes()
}

/// Atomically writes the frontier for `round` into `dir/frontier.ckpt`.
pub fn write_checkpoint(dir: &Path, round: u64, crashes: u32, labels: &[u32]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let body = body_bytes(labels);
    let header = format!(
        "eclshardckpt\t1\t{}\t{round}\t{crashes}\t{:016x}\n",
        labels.len(),
        fnv1a(&body)
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(&body);
    write_atomic(&dir.join(CKPT_FILE), &bytes)
}

/// Loads the checkpoint from `dir`, if a complete, digest-verified one
/// exists. Missing, torn, or tampered files all come back as `None` —
/// the caller falls back to from-scratch recovery.
pub fn read_checkpoint(dir: &Path) -> Option<Checkpoint> {
    let data = fs::read(dir.join(CKPT_FILE)).ok()?;
    let text = std::str::from_utf8(&data).ok()?;
    let (header, body) = text.split_once('\n')?;
    let fields: Vec<&str> = header.split('\t').collect();
    if fields.len() != 6 || fields[0] != "eclshardckpt" || fields[1] != "1" {
        return None;
    }
    let n: usize = fields[2].parse().ok()?;
    let round: u64 = fields[3].parse().ok()?;
    let crashes: u32 = fields[4].parse().ok()?;
    let digest = u64::from_str_radix(fields[5], 16).ok()?;
    if fnv1a(body.as_bytes()) != digest {
        return None;
    }
    let labels: Vec<u32> = body
        .lines()
        .map(|l| l.parse::<u32>().ok())
        .collect::<Option<_>>()?;
    if labels.len() != n {
        return None;
    }
    Some(Checkpoint {
        round,
        crashes,
        labels,
    })
}

/// Write-temp-fsync-rename, the same discipline as the engine journal's
/// result files (reimplemented locally: `ecl-shard` sits below the
/// engine in the crate graph).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; ignore platforms where directories
        // cannot be fsynced.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn temp_path(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "ckpt".into());
    path.with_file_name(format!(".tmp-{name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl-shard-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips() {
        let d = tmpdir("rt");
        let labels: Vec<u32> = (0..500).map(|i| i / 7).collect();
        write_checkpoint(&d, 3, 1, &labels).unwrap();
        let ck = read_checkpoint(&d).unwrap();
        assert_eq!(ck.round, 3);
        assert_eq!(ck.crashes, 1);
        assert_eq!(ck.labels, labels);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_and_tampered_read_as_absent() {
        let d = tmpdir("bad");
        assert_eq!(read_checkpoint(&d), None);
        write_checkpoint(&d, 1, 0, &[1, 2, 3]).unwrap();
        let path = d.join(CKPT_FILE);
        let mut data = fs::read(&path).unwrap();
        let flip = data.len() - 2;
        data[flip] ^= 1;
        fs::write(&path, &data).unwrap();
        assert_eq!(read_checkpoint(&d), None, "tampered label must not verify");
        // Torn tail: truncate mid-body.
        write_checkpoint(&d, 1, 0, &[1, 2, 3]).unwrap();
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        assert_eq!(read_checkpoint(&d), None, "torn checkpoint must not verify");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn overwrite_is_atomic_latest_wins() {
        let d = tmpdir("ow");
        write_checkpoint(&d, 1, 0, &[9; 10]).unwrap();
        write_checkpoint(&d, 2, 0, &[4; 10]).unwrap();
        let ck = read_checkpoint(&d).unwrap();
        assert_eq!(ck.round, 2);
        assert_eq!(ck.labels, vec![4; 10]);
        let _ = fs::remove_dir_all(&d);
    }
}
