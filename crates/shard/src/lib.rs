//! Sharded multi-device ECL-CC with fault-contained label exchange.
//!
//! This crate scales the simulated ECL-CC pipeline past one device: an
//! edge-cut partitioner splits the graph across N simulated GPUs, each
//! solves its shard locally, and the devices then reconcile shared
//! vertices through min-label exchange rounds over a simulated,
//! latency-modeled interconnect until a global fixpoint.
//!
//! Robustness is the design center, not a bolt-on:
//!
//! * every exchange frame carries an FNV digest and is retransmitted on
//!   drop or mismatch ([`interconnect`]),
//! * every round boundary persists a crash-safe label-frontier
//!   checkpoint ([`checkpoint`]),
//! * an injected device crash is absorbed by reassigning the lost
//!   shards to survivors and folding the checkpoint back in (degraded
//!   N−1 mode), and past the crash budget the run degrades to the
//!   single-device fallback ladder ([`coordinator`]).
//!
//! The acceptance bar for all of it is byte-identity: whatever the
//! shard count, worker count, or seeded fault schedule, the final
//! labels equal single-device serial ECL-CC exactly, certified
//! canonical by `ecl-verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod coordinator;
pub mod interconnect;

pub use coordinator::{run_sharded, ShardConfig, ShardOutcome, ShardReport};
pub use interconnect::{ExchangeStats, Interconnect, LinkError, LinkModel};

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_gpu_sim::FaultPlan;
    use ecl_graph::generate;

    fn serial_labels(g: &ecl_graph::CsrGraph) -> Vec<u32> {
        ecl_cc::connected_components(g).labels
    }

    #[test]
    fn sharded_equals_serial_clean() {
        for shards in [1, 2, 3, 4, 8] {
            for g in [
                generate::grid2d(12, 9),
                generate::gnm_random(300, 600, 5),
                generate::disjoint_cliques(10, 7),
                generate::path(50),
            ] {
                let cfg = ShardConfig {
                    shards,
                    ..ShardConfig::default()
                };
                let out = run_sharded(&g, &cfg).unwrap();
                assert_eq!(
                    out.result.labels,
                    serial_labels(&g),
                    "shards={shards} diverged from serial"
                );
                assert!(out.certificate.canonical);
                assert!(!out.report.degraded);
            }
        }
    }

    #[test]
    fn sharded_equals_serial_under_interconnect_chaos() {
        let g = generate::gnm_random(400, 900, 11);
        let want = serial_labels(&g);
        for seed in 1..=5u64 {
            let cfg = ShardConfig {
                shards: 4,
                fault: FaultPlan::shard_chaos(seed),
                ..ShardConfig::default()
            };
            let out = run_sharded(&g, &cfg).unwrap();
            assert_eq!(out.result.labels, want, "seed {seed} diverged");
            assert!(
                out.report.exchange.retransmits > 0 || out.report.exchange.frames_sent == 0,
                "seed {seed}: chaos plan should have forced retransmissions"
            );
        }
    }

    #[test]
    fn device_crash_recovers_from_checkpoint_in_degraded_mode() {
        let g = generate::gnm_random(350, 700, 3);
        let want = serial_labels(&g);
        let dir = std::env::temp_dir().join(format!("ecl-shard-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fault = FaultPlan::shard_chaos(9);
        fault.device_crash_at_round = 2;
        let cfg = ShardConfig {
            shards: 4,
            fault,
            checkpoint_dir: Some(dir.clone()),
            crash_budget: 1,
            ..ShardConfig::default()
        };
        let out = run_sharded(&g, &cfg).unwrap();
        assert_eq!(out.result.labels, want);
        assert_eq!(out.report.device_crashes, 1);
        assert!(out.report.shards_recovered >= 1);
        assert!(out.report.recovery_cycles > 0 || out.report.local_serial_fallbacks > 0);
        assert!(!out.report.degraded, "one crash is within budget");
        assert!(out.report.checkpoint_writes >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_checkpoint_dir_still_exact() {
        let g = generate::grid2d(15, 15);
        let mut fault = FaultPlan::none();
        fault.seed = 4;
        fault.device_crash_at_round = 1;
        let cfg = ShardConfig {
            shards: 3,
            fault,
            ..ShardConfig::default()
        };
        let out = run_sharded(&g, &cfg).unwrap();
        assert_eq!(out.result.labels, serial_labels(&g));
        assert_eq!(out.report.device_crashes, 1);
    }

    #[test]
    fn crash_past_budget_degrades_to_ladder() {
        let g = generate::grid2d(10, 10);
        let mut fault = FaultPlan::none();
        fault.seed = 2;
        fault.device_crash_at_round = 1;
        let cfg = ShardConfig {
            shards: 2,
            fault,
            crash_budget: 0,
            ..ShardConfig::default()
        };
        let out = run_sharded(&g, &cfg).unwrap();
        assert!(out.report.degraded);
        assert_eq!(out.result.labels, serial_labels(&g));
    }

    #[test]
    fn report_json_is_flat_and_parseable() {
        let g = generate::gnm_random(200, 400, 1);
        let out = run_sharded(
            &g,
            &ShardConfig {
                shards: 3,
                fault: FaultPlan::shard_chaos(1),
                ..ShardConfig::default()
            },
        )
        .unwrap();
        let json = out.report.to_json();
        let v = ecl_obs::json::parse(&json).expect("report JSON parses");
        let obj = match v {
            ecl_obs::json::Value::Obj(o) => o,
            other => panic!("expected object, got {other:?}"),
        };
        assert!(obj.iter().any(|(k, _)| k == "rounds"));
        assert!(obj.iter().any(|(k, _)| k == "exchange_bytes"));
    }
}
