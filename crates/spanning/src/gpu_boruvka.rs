//! Borůvka's algorithm on the SIMT simulator — the GPU union-find client
//! the paper's conclusion predicts intermediate pointer jumping will
//! accelerate. The find inside every kernel is the warp-vector Fig. 5
//! path halving from `ecl-cc` (configurable, so the prediction can be
//! tested by swapping in the other jump variants).
//!
//! Device rounds:
//! 1. `bv_reset`  — clear each component's best-weight / best-edge cells,
//! 2. `bv_bid_w`  — every live edge `atomicMin`s its weight into both
//!    endpoint components' best-weight cells,
//! 3. `bv_bid_e`  — edges matching their component's winning weight CAS
//!    themselves into the best-edge cell (deterministic tie-break),
//! 4. `bv_hook`   — each component hooks its winning edge's endpoints and
//!    marks the edge as part of the forest,
//! 5. `bv_flatten`— multiple pointer jumping keeps subsequent finds short.
//!
//! Rounds repeat until no component hooks (at most `log2 n` rounds).

use crate::weights::weighted_edges;
use crate::Forest;
use ecl_cc::gpu::warp_ops::{warp_find, warp_hook_linked};
use ecl_gpu_sim::{Gpu, Lanes};
use ecl_graph::CsrGraph;
use ecl_unionfind::concurrent::JumpKind;

const NO_EDGE: u32 = u32::MAX;
const NO_WEIGHT: u32 = u32::MAX;

/// Minimum spanning forest by Borůvka on the simulated GPU, using the
/// given pointer-jumping variant inside every find.
pub fn run(gpu: &mut Gpu, g: &CsrGraph, jump: JumpKind) -> Forest {
    let n = g.num_vertices();
    let host_edges = weighted_edges(g);
    let m = host_edges.len();
    if n == 0 || m == 0 {
        return Forest {
            edges: Vec::new(),
            total_weight: 0,
        };
    }

    let src = gpu.alloc_from(&host_edges.iter().map(|e| e.0).collect::<Vec<_>>());
    let dst = gpu.alloc_from(&host_edges.iter().map(|e| e.1).collect::<Vec<_>>());
    let wgt = gpu.alloc_from(&host_edges.iter().map(|e| e.2).collect::<Vec<_>>());
    let parent = gpu.alloc_from(&(0..n as u32).collect::<Vec<_>>());
    let best_w = gpu.alloc(n);
    let best_e = gpu.alloc(n);
    let picked = gpu.alloc(m);
    let merged = gpu.alloc(1);

    let nu = n as u32;
    let mu = m as u32;
    let total_v = gpu.suggested_threads(n);
    let total_e = gpu.suggested_threads(m);
    let stride_v = total_v as u32;
    let stride_e = total_e as u32;

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds <= 64, "GPU Boruvka exceeded log2(n) rounds");
        gpu.upload(merged, &[0]);

        gpu.launch_warps("bv_reset", total_v, |w| {
            let mut v = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & v.lt_scalar(nu);
                if m_act.none() {
                    return;
                }
                w.store(best_w, &v, &Lanes::splat(NO_WEIGHT), m_act);
                w.store(best_e, &v, &Lanes::splat(NO_EDGE), m_act);
                v = v.add_scalar(stride_v);
                w.alu(1);
            }
        });

        gpu.launch_warps("bv_bid_w", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(mu);
                if m_act.none() {
                    return;
                }
                let u = w.load(src, &e, m_act);
                let v = w.load(dst, &e, m_act);
                let ru = warp_find(w, parent, &u, m_act, jump);
                let rv = warp_find(w, parent, &v, m_act, jump);
                let live = m_act & ru.ne_mask(&rv);
                if live.any() {
                    let wt = w.load(wgt, &e, live);
                    let _ = w.atomic_min(best_w, &ru, &wt, live);
                    let _ = w.atomic_min(best_w, &rv, &wt, live);
                }
                e = e.add_scalar(stride_e);
                w.alu(2);
            }
        });

        gpu.launch_warps("bv_bid_e", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(mu);
                if m_act.none() {
                    return;
                }
                let u = w.load(src, &e, m_act);
                let v = w.load(dst, &e, m_act);
                let ru = warp_find(w, parent, &u, m_act, jump);
                let rv = warp_find(w, parent, &v, m_act, jump);
                let live = m_act & ru.ne_mask(&rv);
                if live.any() {
                    let wt = w.load(wgt, &e, live);
                    // Claim the best-edge slot of any component whose
                    // winning weight this edge matches (first CAS wins —
                    // deterministic under the simulator's lane order).
                    for reps in [&ru, &rv] {
                        let bw = w.load(best_w, reps, live);
                        let is_min = live & bw.eq_mask(&wt);
                        if is_min.any() {
                            let _ = w.atomic_cas(best_e, reps, &Lanes::splat(NO_EDGE), &e, is_min);
                        }
                    }
                }
                e = e.add_scalar(stride_e);
                w.alu(2);
            }
        });

        gpu.launch_warps("bv_hook", total_v, |w| {
            let mut r = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & r.lt_scalar(nu);
                if m_act.none() {
                    return;
                }
                let e = w.load(best_e, &r, m_act);
                let has = m_act & e.ne_mask(&Lanes::splat(NO_EDGE));
                if has.any() {
                    let u = w.load(src, &e, has);
                    let v = w.load(dst, &e, has);
                    let ru = warp_find(w, parent, &u, has, jump);
                    let rv = warp_find(w, parent, &v, has, jump);
                    let live = has & ru.ne_mask(&rv);
                    if live.any() {
                        // Claim edges only where *this lane's* CAS linked:
                        // under weight ties, two roots can nominate
                        // distinct edges bridging the same pair of
                        // components, and only the lane that merged them
                        // may put its edge in the forest.
                        let (_, linked) = warp_hook_linked(w, parent, &ru, &rv, live);
                        w.store(picked, &e, &Lanes::splat(1), linked);
                        w.store(merged, &Lanes::splat(0), &Lanes::splat(1), linked);
                    }
                }
                r = r.add_scalar(stride_v);
                w.alu(1);
            }
        });

        gpu.launch_warps("bv_flatten", total_v, |w| {
            let mut v = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & v.lt_scalar(nu);
                if m_act.none() {
                    return;
                }
                let _ = warp_find(w, parent, &v, m_act, JumpKind::Multiple);
                v = v.add_scalar(stride_v);
                w.alu(1);
            }
        });

        if gpu.download(merged)[0] == 0 {
            break;
        }
    }

    let picked_host = gpu.download(picked);
    let mut forest = Vec::new();
    let mut total = 0u64;
    for (i, &p) in picked_host.iter().enumerate() {
        if p == 1 {
            let (u, v, w) = host_edges[i];
            forest.push((u, v));
            total += w as u64;
        }
    }
    forest.sort_unstable();
    Forest {
        edges: forest,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal;
    use ecl_gpu_sim::DeviceProfile;
    use ecl_graph::generate;
    use ecl_unionfind::Compression;

    fn check(g: &CsrGraph) {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let f = run(&mut gpu, g, JumpKind::Intermediate);
        f.validate(g).unwrap();
        let k = kruskal::run(g, Compression::Halving);
        assert_eq!(f.total_weight, k.total_weight, "weight mismatch");
        assert_eq!(f.edges.len(), k.edges.len());
    }

    #[test]
    fn matches_kruskal_on_varied_graphs() {
        check(&generate::path(100));
        check(&generate::complete(16));
        check(&generate::disjoint_cliques(4, 6));
        check(&generate::grid2d(10, 10));
        check(&generate::gnm_random(200, 500, 5));
    }

    #[test]
    fn all_jump_variants_agree() {
        let g = generate::gnm_random(150, 400, 6);
        let k = kruskal::run(&g, Compression::Halving);
        for jump in [
            JumpKind::Multiple,
            JumpKind::Single,
            JumpKind::None,
            JumpKind::Intermediate,
        ] {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            let f = run(&mut gpu, &g, jump);
            f.validate(&g).unwrap();
            assert_eq!(f.total_weight, k.total_weight, "{jump:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let f = run(
            &mut gpu,
            &ecl_graph::GraphBuilder::new(0).build(),
            JumpKind::Intermediate,
        );
        assert!(f.edges.is_empty());
        let f = run(
            &mut gpu,
            &ecl_graph::GraphBuilder::new(8).build(),
            JumpKind::Intermediate,
        );
        assert!(f.edges.is_empty());
    }
}
