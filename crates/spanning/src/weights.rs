//! Deterministic synthetic edge weights.
//!
//! The catalog graphs are unweighted; spanning-forest algorithms need
//! weights, so each edge gets a pseudo-random 24-bit weight hashed from
//! its canonical endpoint pair. Deterministic by construction, identical
//! across algorithms, platforms, and runs.

use ecl_graph::Vertex;

/// Weight of the undirected edge `{u, v}` (order-insensitive).
///
/// 24 bits so that packing `(weight << 32) | edge_index` into a `u64`
/// (Borůvka's atomic min-edge records) can never overflow, and ties are
/// possible but rare.
#[inline]
pub fn edge_weight(u: Vertex, v: Vertex) -> u32 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let mut x = ((a as u64) << 32) | b as u64;
    // splitmix64 finalizer.
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x & 0x00ff_ffff) as u32
}

/// All edges of `g` (one direction) with their weights.
pub fn weighted_edges(g: &ecl_graph::CsrGraph) -> Vec<(Vertex, Vertex, u32)> {
    g.edges().map(|(u, v)| (u, v, edge_weight(u, v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_and_deterministic() {
        assert_eq!(edge_weight(3, 9), edge_weight(9, 3));
        assert_eq!(edge_weight(3, 9), edge_weight(3, 9));
    }

    #[test]
    fn fits_24_bits() {
        for i in 0..1000u32 {
            assert!(edge_weight(i, i * 7 + 1) < (1 << 24));
        }
    }

    #[test]
    fn spreads_values() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500u32 {
            seen.insert(edge_weight(i, i + 1));
        }
        assert!(seen.len() > 490, "too many collisions: {}", seen.len());
    }

    #[test]
    fn weighted_edges_cover_graph() {
        let g = ecl_graph::generate::complete(6);
        let we = weighted_edges(&g);
        assert_eq!(we.len(), 15);
        assert!(we.iter().all(|&(u, v, w)| u < v && w == edge_weight(u, v)));
    }
}
