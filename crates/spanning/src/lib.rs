//! Spanning forests on the ECL union-find.
//!
//! The paper's conclusion proposes exactly this extension: "Intermediate
//! pointer jumping … should be able to accelerate other GPU algorithms
//! that are based on union find, such as Kruskal's algorithm for finding
//! the minimum spanning tree of a graph." This crate builds minimum
//! spanning forests (MSF — one tree per connected component) three ways:
//!
//! * [`kruskal`] — serial Kruskal on [`ecl_unionfind::DisjointSets`],
//!   with the compression strategy pluggable so the paper's claim (path
//!   halving accelerates union-find clients) is directly benchmarkable,
//! * [`boruvka`] — parallel Borůvka on the lock-free
//!   [`ecl_unionfind::AtomicParents`], selecting each component's
//!   lightest edge with packed-word atomic minima,
//! * [`gpu_boruvka`] — Borůvka on the SIMT simulator, reusing the
//!   warp-vector `find` from `ecl-cc`.
//!
//! Edge weights come from [`weights::edge_weight`], a deterministic hash
//! of the endpoints — synthetic but fixed, so all three algorithms (and
//! repeated runs) agree on the forest weight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boruvka;
pub mod gpu_boruvka;
pub mod kruskal;
pub mod weights;

use ecl_graph::Vertex;

/// A spanning forest: the selected edges and their total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Forest {
    /// Selected edges, as `(u, v)` with `u < v`, sorted.
    pub edges: Vec<(Vertex, Vertex)>,
    /// Sum of the selected edges' weights.
    pub total_weight: u64,
}

impl Forest {
    /// Number of trees this forest spans, given the graph's vertex count:
    /// `n - |edges|`.
    pub fn num_trees(&self, n: usize) -> usize {
        n - self.edges.len()
    }

    /// Checks structural validity against `g`: every edge exists in `g`,
    /// no cycles, and the forest connects exactly the components of `g`.
    pub fn validate(&self, g: &ecl_graph::CsrGraph) -> Result<(), String> {
        let n = g.num_vertices();
        let mut ds = ecl_unionfind::DisjointSets::new(n);
        for &(u, v) in &self.edges {
            if !g.has_edge(u, v) {
                return Err(format!("forest edge ({u},{v}) not in graph"));
            }
            if !ds.union(u, v) {
                return Err(format!("forest edge ({u},{v}) closes a cycle"));
            }
        }
        if ds.count_sets() != ecl_graph::stats::count_components(g) {
            return Err(format!(
                "forest spans {} trees but graph has {} components",
                ds.count_sets(),
                ecl_graph::stats::count_components(g)
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_trees_arithmetic() {
        let f = Forest {
            edges: vec![(0, 1), (1, 2)],
            total_weight: 5,
        };
        assert_eq!(f.num_trees(5), 3);
    }

    #[test]
    fn validate_catches_cycles() {
        let g = ecl_graph::generate::complete(3);
        let f = Forest {
            edges: vec![(0, 1), (0, 2), (1, 2)],
            total_weight: 0,
        };
        assert!(f.validate(&g).unwrap_err().contains("cycle"));
    }

    #[test]
    fn validate_catches_foreign_edges() {
        let g = ecl_graph::generate::path(4);
        let f = Forest {
            edges: vec![(0, 3)],
            total_weight: 0,
        };
        assert!(f.validate(&g).unwrap_err().contains("not in graph"));
    }

    #[test]
    fn validate_catches_underspanning() {
        let g = ecl_graph::generate::path(4);
        let f = Forest {
            edges: vec![(0, 1)],
            total_weight: 0,
        };
        assert!(f.validate(&g).unwrap_err().contains("trees"));
    }
}
