//! Parallel Borůvka on the lock-free concurrent union-find.
//!
//! Each round, every component selects its lightest incident edge with a
//! packed-word atomic minimum (`weight << 32 | edge_index`, unique per
//! edge so ties break deterministically), then the winners are hooked
//! through [`ecl_unionfind::AtomicParents`]. Components at least halve
//! per round, so there are at most `log2 n` rounds.

use crate::weights::weighted_edges;
use crate::Forest;
use ecl_graph::CsrGraph;
use ecl_parallel::{parallel_for, Schedule};
use ecl_unionfind::AtomicParents;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Minimum spanning forest by parallel Borůvka with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> Forest {
    let n = g.num_vertices();
    let edges = weighted_edges(g);
    let m = edges.len();
    let parents = AtomicParents::new(n);
    let picked: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(false)).collect();
    let best: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        assert!(rounds <= 64, "Boruvka exceeded log2(n) rounds");

        // --- reset the per-component records --------------------------
        {
            let best = &best;
            parallel_for(threads, n, Schedule::Static, move |v| {
                best[v].store(u64::MAX, Ordering::Relaxed);
            });
        }

        // --- each edge bids on both endpoint components ----------------
        {
            let best = &best;
            let parents = &parents;
            let edges = &edges;
            parallel_for(threads, m, Schedule::Guided { min_chunk: 64 }, move |i| {
                let (u, v, w) = edges[i];
                let ru = parents.find_repres(u);
                let rv = parents.find_repres(v);
                if ru != rv {
                    let key = ((w as u64) << 32) | i as u64;
                    best[ru as usize].fetch_min(key, Ordering::Relaxed);
                    best[rv as usize].fetch_min(key, Ordering::Relaxed);
                }
            });
        }

        // --- hook each component's winning edge ------------------------
        let merged = std::sync::atomic::AtomicUsize::new(0);
        {
            let best = &best;
            let parents = &parents;
            let edges = &edges;
            let picked = &picked;
            let merged = &merged;
            parallel_for(threads, n, Schedule::Guided { min_chunk: 64 }, move |r| {
                let key = best[r].load(Ordering::Relaxed);
                if key == u64::MAX {
                    return;
                }
                let i = (key & 0xffff_ffff) as usize;
                let (u, v, _) = edges[i];
                let ru = parents.find_repres(u);
                let rv = parents.find_repres(v);
                // Claim the edge only if *this* call performed the link —
                // two components can nominate the same edge, and distinct
                // edges between the same component pair must not both
                // enter the forest.
                let (_, linked) = parents.hook_linked(ru, rv);
                if linked {
                    let was = picked[i].swap(true, Ordering::Relaxed);
                    debug_assert!(!was, "edge {i} linked twice");
                    merged.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        if merged.load(Ordering::Relaxed) == 0 {
            break;
        }
    }

    let mut forest = Vec::new();
    let mut total = 0u64;
    for (i, p) in picked.iter().enumerate() {
        if p.load(Ordering::Relaxed) {
            let (u, v, w) = edges[i];
            forest.push((u, v));
            total += w as u64;
        }
    }
    forest.sort_unstable();
    Forest {
        edges: forest,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal;
    use ecl_graph::generate;
    use ecl_unionfind::Compression;

    #[test]
    fn matches_kruskal_weight() {
        for g in [
            generate::path(200),
            generate::complete(20),
            generate::disjoint_cliques(5, 8),
            generate::gnm_random(400, 1200, 3),
            generate::grid2d(14, 14),
            generate::rmat(8, 6, generate::RmatParams::GALOIS, 4),
        ] {
            let k = kruskal::run(&g, Compression::Halving);
            let b = run(&g, 4);
            b.validate(&g).unwrap();
            assert_eq!(b.total_weight, k.total_weight);
            assert_eq!(b.edges.len(), k.edges.len());
        }
    }

    #[test]
    fn single_thread_works() {
        let g = generate::gnm_random(200, 500, 7);
        let b = run(&g, 1);
        b.validate(&g).unwrap();
    }

    #[test]
    fn deterministic_across_runs() {
        // Unique packed keys make even the edge *set* deterministic.
        let g = generate::kronecker(8, 6, 9);
        let a = run(&g, 8);
        let b = run(&g, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_edgeless() {
        assert!(run(&ecl_graph::GraphBuilder::new(0).build(), 4)
            .edges
            .is_empty());
        let f = run(&ecl_graph::GraphBuilder::new(5).build(), 4);
        assert!(f.edges.is_empty());
        assert_eq!(f.total_weight, 0);
    }
}
