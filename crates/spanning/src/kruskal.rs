//! Serial Kruskal on the workspace disjoint-set structure.
//!
//! The find-compression strategy is a parameter so the paper's closing
//! claim — intermediate pointer jumping (path halving) speeds up
//! union-find clients like Kruskal — can be measured directly
//! (`benches/spanning.rs` in `ecl-bench` sweeps it).

use crate::weights::weighted_edges;
use crate::Forest;
use ecl_graph::CsrGraph;
use ecl_unionfind::{Compression, DisjointSets};

/// Minimum spanning forest by Kruskal's algorithm with the given find
/// compression.
pub fn run(g: &CsrGraph, compression: Compression) -> Forest {
    let mut edges = weighted_edges(g);
    edges.sort_unstable_by_key(|&(u, v, w)| (w, u, v));
    let mut ds = DisjointSets::with_compression(g.num_vertices(), compression);
    let mut forest = Vec::new();
    let mut total = 0u64;
    for (u, v, w) in edges {
        if ds.union(u, v) {
            forest.push((u, v));
            total += w as u64;
        }
    }
    forest.sort_unstable();
    Forest {
        edges: forest,
        total_weight: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generate;

    fn all_compressions() -> [Compression; 4] {
        [
            Compression::None,
            Compression::Full,
            Compression::Halving,
            Compression::Splitting,
        ]
    }

    #[test]
    fn forest_is_valid_on_varied_graphs() {
        for g in [
            generate::path(50),
            generate::complete(12),
            generate::disjoint_cliques(4, 6),
            generate::gnm_random(200, 600, 1),
            generate::grid2d(9, 9),
        ] {
            let f = run(&g, Compression::Halving);
            f.validate(&g).unwrap();
            assert_eq!(
                f.num_trees(g.num_vertices()),
                ecl_graph::stats::count_components(&g)
            );
        }
    }

    #[test]
    fn compression_choice_does_not_change_weight() {
        let g = generate::gnm_random(300, 900, 2);
        let reference = run(&g, Compression::None);
        for c in all_compressions() {
            let f = run(&g, c);
            assert_eq!(f.total_weight, reference.total_weight, "{c:?}");
            f.validate(&g).unwrap();
        }
    }

    #[test]
    fn tree_on_tree_input_selects_every_edge() {
        let g = generate::binary_tree(31);
        let f = run(&g, Compression::Halving);
        assert_eq!(f.edges.len(), 30);
    }

    #[test]
    fn brute_force_weight_on_tiny_graph() {
        // K4 with deterministic weights: check against explicit minimum.
        let g = generate::complete(4);
        let f = run(&g, Compression::Halving);
        assert_eq!(f.edges.len(), 3);
        // Exhaustively check every spanning tree of K4 (16 of them).
        let all: Vec<(u32, u32, u32)> = crate::weights::weighted_edges(&g);
        let mut best = u64::MAX;
        for a in 0..all.len() {
            for b in (a + 1)..all.len() {
                for c in (b + 1)..all.len() {
                    let picks = [all[a], all[b], all[c]];
                    let mut ds = DisjointSets::new(4);
                    let mut ok = true;
                    let mut w = 0u64;
                    for &(u, v, wt) in &picks {
                        ok &= ds.union(u, v);
                        w += wt as u64;
                    }
                    if ok {
                        best = best.min(w);
                    }
                }
            }
        }
        assert_eq!(f.total_weight, best);
    }

    #[test]
    fn empty_and_edgeless() {
        let f = run(&ecl_graph::GraphBuilder::new(0).build(), Compression::Full);
        assert!(f.edges.is_empty());
        let f = run(&ecl_graph::GraphBuilder::new(9).build(), Compression::Full);
        assert!(f.edges.is_empty());
        assert_eq!(f.num_trees(9), 9);
    }
}
